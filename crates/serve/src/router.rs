//! The shard fabric: keyspace sharding by split points, a scatter-gather
//! router over replica groups of `pc-serve` nodes, and a thin wire
//! front-end so clients keep speaking the existing v2 protocol.
//!
//! The paper's structures are embarrassingly partitionable by key range:
//! every query this workspace serves (1-d range, stabbing, 2-sided,
//! 3-sided) decomposes over disjoint x-ranges, so a [`ShardMap`] of
//! strictly increasing split points assigns each key to exactly one
//! logical shard and each query to the contiguous run of shards its
//! x-range overlaps. The router scatters the query to those shards
//! (node-to-node over the same wire protocol, via [`Client`]), gathers,
//! and merges into the **canonical order** ([`canonicalize`]): points by
//! `(x, y, id)`, intervals by `(lo, hi, id)`, keys by key. A single-node
//! target's answer, canonicalized the same way, is bit-identical — the
//! property the `router_merge` suite proves across shard counts 1–8.
//!
//! Robustness model (the reason this layer exists):
//!
//! * each logical shard is a **replica group** of ≥ 1 `pc-serve`
//!   instances; reads go to one replica (round-robin) and **fail over**
//!   to the next on a connection error, a deadline, or a transient typed
//!   error ([`crate::wire::ErrorCode::is_transient`]);
//! * idempotent queries are **retried** under the seeded-jitter
//!   [`RetryPolicy`] (capped exponential backoff) after a full cycle of
//!   replicas failed;
//! * updates are routed to the owning shard and fanned out to **every
//!   healthy replica**; the update is acknowledged iff at least one
//!   replica acked, and every replica that did *not* ack an acked update
//!   is marked dead until the background health loop replays it back in
//!   sync from the shard's **journal** of acked updates (replay is
//!   idempotent: dynamic-PST updates resolve by point id and sequence);
//!   the journal is truncated below the slowest replica's cursor, so its
//!   memory footprint tracks replica lag, not uptime
//!   (`pc_shard_journal_truncated` counts reclaimed entries);
//! * a background **health loop** pings replicas (ADMIN ping), marks the
//!   unresponsive dead, reconnects dead ones, and replays their journal
//!   tail before readmitting them to the read path;
//! * per-shard `Overloaded` / `DeadlineExceeded` propagate as
//!   partial-failure-aware typed [`RouterError`]s naming the shard, and
//!   router-level shutdown fans out to every replica ([`Router::shutdown`]).
//!
//! What this layer does **not** do (documented, not accidental): an
//! update that failed on every replica is not journaled, so a replica
//! that silently applied it before dying can carry it as an extra,
//! never-acknowledged op — exactly the at-least-once contract every
//! client of a replicated store already lives with. Clients that retry
//! unacknowledged updates to an ack re-converge the groups, because
//! replay and re-application are idempotent by point identity.

use std::fmt;
use std::io::{self};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pc_obs::hist::Histogram;
use pc_obs::shard_metrics as names;
use pc_pagestore::{Interval, Point};
use pc_rng::Rng;
use pc_sync::Mutex;

use crate::client::{Client, ClientError, RetryPolicy};
use crate::wire::{
    decode_request, response_frame, Body, ErrorCode, FrameProgress, FrameReader, Op, Response,
    MAX_FRAME,
};

/// The keyspace partition: `splits` strictly increasing, shard `i` owning
/// `[splits[i-1], splits[i])` with open ends (`shards() == splits.len() + 1`).
#[derive(Debug, Clone)]
pub struct ShardMap {
    splits: Vec<i64>,
}

impl ShardMap {
    /// Builds a map from strictly increasing split points; an empty vec is
    /// the degenerate single-shard map.
    pub fn new(splits: Vec<i64>) -> ShardMap {
        assert!(splits.windows(2).all(|w| w[0] < w[1]), "split points must strictly increase");
        ShardMap { splits }
    }

    /// Split points at the x-quantiles of `keys` — the harness-side helper
    /// for carving `shards` balanced shards out of a concrete data set.
    /// Returns fewer than `shards - 1` splits when duplicates collapse.
    pub fn quantile_splits(keys: &[i64], shards: usize) -> Vec<i64> {
        if shards <= 1 || keys.is_empty() {
            return Vec::new();
        }
        let mut sorted = keys.to_vec();
        sorted.sort_unstable();
        let mut splits = Vec::with_capacity(shards - 1);
        for s in 1..shards {
            let cut = sorted[(s * sorted.len() / shards).min(sorted.len() - 1)];
            // Never cut at the minimum key (shard 0 would own nothing) and
            // keep the sequence strictly increasing under duplicates.
            if cut > sorted[0] && splits.last().is_none_or(|&prev| cut > prev) {
                splits.push(cut);
            }
        }
        splits
    }

    /// Number of logical shards.
    pub fn shards(&self) -> usize {
        self.splits.len() + 1
    }

    /// The split points.
    pub fn splits(&self) -> &[i64] {
        &self.splits
    }

    /// The shard owning key `x`.
    pub fn shard_of(&self, x: i64) -> usize {
        self.splits.partition_point(|&s| s <= x)
    }

    /// The contiguous shard indices a closed x-range `[lo, hi]` overlaps.
    pub fn shard_range(&self, lo: i64, hi: i64) -> std::ops::RangeInclusive<usize> {
        if lo > hi {
            // Empty query range: route to the lo shard; it answers empty.
            let s = self.shard_of(lo);
            return s..=s;
        }
        self.shard_of(lo)..=self.shard_of(hi)
    }

    /// The shards a routable op touches, or `None` for ops the data path
    /// cannot route (admin ops).
    pub fn route(&self, op: &Op) -> Option<std::ops::RangeInclusive<usize>> {
        match op {
            Op::Range1d { lo, hi } => Some(self.shard_range(*lo, *hi)),
            Op::Stab { q } => {
                let s = self.shard_of(*q);
                Some(s..=s)
            }
            Op::TwoSided { x0, .. } => Some(self.shard_of(*x0)..=self.shards() - 1),
            Op::ThreeSided { x1, x2, .. } => Some(self.shard_range(*x1, *x2)),
            Op::Insert(p) | Op::Delete(p) => {
                let s = self.shard_of(p.x);
                Some(s..=s)
            }
            _ => None,
        }
    }

    /// Data placement: points by owning shard.
    pub fn partition_points(&self, points: &[Point]) -> Vec<Vec<Point>> {
        let mut out = vec![Vec::new(); self.shards()];
        for p in points {
            out[self.shard_of(p.x)].push(*p);
        }
        out
    }

    /// Data placement: `(key, value)` entries by owning shard.
    pub fn partition_entries(&self, entries: &[(i64, u64)]) -> Vec<Vec<(i64, u64)>> {
        let mut out = vec![Vec::new(); self.shards()];
        for e in entries {
            out[self.shard_of(e.0)].push(*e);
        }
        out
    }

    /// Data placement: each interval is stored on **every** shard it
    /// overlaps, so a stabbing query at `q` — routed to the single shard
    /// owning `q` — finds every interval containing `q` locally.
    pub fn partition_intervals(&self, intervals: &[Interval]) -> Vec<Vec<Interval>> {
        let mut out = vec![Vec::new(); self.shards()];
        for iv in intervals {
            for s in self.shard_range(iv.lo, iv.hi) {
                out[s].push(*iv);
            }
        }
        out
    }
}

/// Router tuning knobs. `Default` suits tests and small clusters.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Per-replica TCP connect timeout.
    pub connect_timeout: Duration,
    /// Per-call socket read/write timeout (a dead peer surfaces as an
    /// error, never a hang).
    pub io_timeout: Duration,
    /// Per-shard read retry schedule (attempts × capped exponential
    /// backoff with seeded jitter); one "attempt" is a full cycle over the
    /// shard's replicas.
    pub retry: RetryPolicy,
    /// Background health-loop cadence (ping, reconnect, journal replay).
    pub health_interval: Duration,
    /// Idle connections retained per replica. Calls check a connection out
    /// of the pool (opening a new one when empty), so replica concurrency
    /// tracks caller concurrency instead of serializing on one socket.
    pub pool_per_replica: usize,
    /// Seed for backoff jitter (deterministic retry schedules in tests).
    pub seed: u64,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            connect_timeout: Duration::from_secs(1),
            io_timeout: Duration::from_secs(5),
            retry: RetryPolicy::default(),
            health_interval: Duration::from_millis(50),
            pool_per_replica: 8,
            seed: 0x5AFE_C10C,
        }
    }
}

/// Why a routed request failed. Partial-failure aware: every variant names
/// the shard that failed, and a typed per-shard error (`Overloaded`,
/// `DeadlineExceeded`, ...) carries its original code — one hot shard
/// shedding load is distinguishable from the fabric being down.
#[derive(Debug)]
pub enum RouterError {
    /// Every replica of the shard was unreachable (connection errors /
    /// timeouts) after the full retry schedule.
    ShardUnavailable {
        /// The logical shard index.
        shard: usize,
        /// Last transport error observed.
        detail: String,
    },
    /// The shard answered with a typed error; other shards of the same
    /// scatter may have answered fine.
    Shard {
        /// The logical shard index.
        shard: usize,
        /// The shard's own error code, propagated verbatim.
        code: ErrorCode,
        /// The shard's message.
        message: String,
    },
    /// The op cannot be routed (admin ops must target the router itself).
    BadRequest(String),
    /// A shard answered with a body the op cannot produce.
    Protocol {
        /// The logical shard index.
        shard: usize,
        /// What came back.
        detail: String,
    },
    /// The router is draining; no new work is routed.
    ShuttingDown,
}

impl RouterError {
    /// The wire code the front-end answers clients with.
    pub fn code(&self) -> ErrorCode {
        match self {
            RouterError::ShardUnavailable { .. } => ErrorCode::Storage,
            RouterError::Shard { code, .. } => *code,
            RouterError::BadRequest(_) => ErrorCode::BadRequest,
            RouterError::Protocol { .. } => ErrorCode::Storage,
            RouterError::ShuttingDown => ErrorCode::ShuttingDown,
        }
    }
}

impl fmt::Display for RouterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouterError::ShardUnavailable { shard, detail } => {
                write!(f, "shard {shard}: all replicas unavailable: {detail}")
            }
            RouterError::Shard { shard, code, message } => {
                write!(f, "shard {shard}: {code:?}: {message}")
            }
            RouterError::BadRequest(msg) => write!(f, "unroutable request: {msg}"),
            RouterError::Protocol { shard, detail } => {
                write!(f, "shard {shard}: protocol error: {detail}")
            }
            RouterError::ShuttingDown => write!(f, "router is draining"),
        }
    }
}

impl std::error::Error for RouterError {}

/// Always-on per-shard counters (the `pc_shard_*` families).
#[derive(Default)]
pub struct ShardStats {
    /// Requests (queries + updates) routed at this shard.
    pub requests: AtomicU64,
    /// Reads failed over to another replica.
    pub failovers: AtomicU64,
    /// Backoff retry cycles taken by idempotent queries.
    pub retries: AtomicU64,
    /// Requests that ended in a typed error.
    pub errors: AtomicU64,
    /// Journal entries replayed into catching-up replicas.
    pub replayed: AtomicU64,
    /// Replica reconnects completed by the health loop.
    pub reconnects: AtomicU64,
    /// Journal entries truncated after every replica caught up past them.
    pub truncated: AtomicU64,
    /// Scatter-leg latency, nanoseconds.
    pub latency_ns: Histogram,
}

/// One replica of a shard group, with a pool of idle connections so
/// concurrent scatter legs don't serialize on a single socket.
struct Replica {
    addr: Mutex<SocketAddr>,
    idle: Mutex<Vec<Client>>,
    healthy: AtomicBool,
    /// Journal entries known applied to this replica. Transitions that
    /// matter (ack fan-out, replay-complete) happen under the shard's
    /// journal lock.
    caught_up: AtomicU64,
}

impl Replica {
    fn mark_dead(&self) {
        self.healthy.store(false, Relaxed);
        self.idle.lock().clear();
    }

    /// Takes an idle connection, or opens a fresh one.
    fn checkout(&self, connect_timeout: Duration) -> Option<Client> {
        if let Some(c) = self.idle.lock().pop() {
            return Some(c);
        }
        Client::connect(*self.addr.lock(), connect_timeout).ok()
    }

    /// Returns a connection after a successful call; dropped when the pool
    /// is full or the replica died meanwhile.
    fn checkin(&self, client: Client, cap: usize) {
        if self.healthy.load(Relaxed) {
            let mut idle = self.idle.lock();
            if idle.len() < cap {
                idle.push(client);
            }
        }
    }

    /// One request over a pooled connection. A transport failure consumes
    /// the connection and surfaces the error; the caller decides whether
    /// the replica is dead.
    fn call(
        &self,
        cfg: &RouterConfig,
        target: u16,
        deadline_ms: u32,
        op: &Op,
    ) -> Result<Response, ClientError> {
        let Some(mut client) = self.checkout(cfg.connect_timeout) else {
            return Err(ClientError::Closed);
        };
        match client.call(target, deadline_ms, op.clone()) {
            Ok(resp) => {
                self.checkin(client, cfg.pool_per_replica);
                Ok(resp)
            }
            Err(e) => Err(e),
        }
    }
}

/// The acked-update journal of one shard, with a base offset so entries
/// every replica has applied can be reclaimed. Replica `caught_up` cursors
/// stay *absolute* (counted from the first ack ever), so truncation is
/// invisible to the replay protocol: only entries strictly below
/// `min(caught_up)` across the whole group are dropped, and by that point
/// no replica can ever ask for them again.
#[derive(Default)]
struct Journal {
    /// Absolute index of `entries[0]`; everything below was truncated.
    base: u64,
    /// Retained suffix of the acked updates, in ack order, as `(target, op)`.
    entries: Vec<(u16, Op)>,
}

impl Journal {
    /// Absolute journal length: total acks ever recorded.
    fn len(&self) -> u64 {
        self.base + self.entries.len() as u64
    }

    /// Retained (in-memory) entry count.
    fn retained(&self) -> u64 {
        self.entries.len() as u64
    }

    fn push(&mut self, entry: (u16, Op)) {
        self.entries.push(entry);
    }

    /// The tail from absolute cursor `from` (callers guarantee
    /// `from >= base`: truncation never passes any replica's cursor).
    fn tail_from(&self, from: u64) -> Vec<(u16, Op)> {
        debug_assert!(from >= self.base, "replay cursor {from} below journal base {}", self.base);
        let skip = (from.saturating_sub(self.base)).min(self.entries.len() as u64) as usize;
        self.entries[skip..].to_vec()
    }

    /// Drops entries with absolute index `< upto`; returns how many went.
    fn truncate_below(&mut self, upto: u64) -> u64 {
        let drop = upto.saturating_sub(self.base).min(self.entries.len() as u64);
        self.entries.drain(..drop as usize);
        self.base += drop;
        drop
    }
}

/// One logical shard: a replica group plus the acked-update journal.
struct Shard {
    replicas: Vec<Replica>,
    /// Every acknowledged update in ack order. Truncated below
    /// `min(caught_up)` across the group after each fan-out and each
    /// completed replay, so a long-running fleet holds only the suffix some
    /// lagging replica may still need.
    journal: Mutex<Journal>,
    /// Round-robin read cursor.
    rr: AtomicU64,
    stats: ShardStats,
    /// Jitter source for this shard's backoff delays.
    rng: Mutex<Rng>,
}

impl Shard {
    fn dead_replicas(&self) -> u64 {
        self.replicas.iter().filter(|r| !r.healthy.load(Relaxed)).count() as u64
    }

    /// Reclaims the journal prefix every replica (healthy or not — a dead
    /// one still replays from its cursor) has applied. Caller holds the
    /// journal lock.
    fn truncate_caught_up(&self, journal: &mut Journal) {
        let min = self.replicas.iter().map(|r| r.caught_up.load(Relaxed)).min().unwrap_or(0);
        let dropped = journal.truncate_below(min);
        if dropped > 0 {
            self.stats.truncated.fetch_add(dropped, Relaxed);
        }
    }
}

struct Inner {
    map: ShardMap,
    shards: Vec<Shard>,
    cfg: RouterConfig,
    shutdown: AtomicBool,
}

/// The scatter-gather router over a shard fabric. Cheap to share
/// (`Arc<Router>`): all state is interior.
pub struct Router {
    inner: Arc<Inner>,
    health: Mutex<Option<JoinHandle<()>>>,
}

impl Router {
    /// Connects to a fabric: `groups[i]` is shard `i`'s replica group (all
    /// replicas of a group must hold identical data). Fails only when a
    /// *whole* group is unreachable — individual dead replicas are left to
    /// the health loop.
    pub fn connect(
        groups: &[Vec<SocketAddr>],
        splits: Vec<i64>,
        cfg: RouterConfig,
    ) -> io::Result<Router> {
        let map = ShardMap::new(splits);
        if groups.len() != map.shards() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("{} split points imply {} shards, got {} groups", map.splits().len(), map.shards(), groups.len()),
            ));
        }
        let mut shards = Vec::with_capacity(groups.len());
        for (si, group) in groups.iter().enumerate() {
            if group.is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("shard {si} has an empty replica group"),
                ));
            }
            let mut replicas = Vec::with_capacity(group.len());
            let mut any_up = false;
            for &addr in group {
                let conn = Client::connect(addr, cfg.connect_timeout).ok();
                let up = conn.is_some();
                any_up |= up;
                replicas.push(Replica {
                    addr: Mutex::new(addr),
                    idle: Mutex::new(conn.into_iter().collect()),
                    healthy: AtomicBool::new(up),
                    caught_up: AtomicU64::new(0),
                });
            }
            if !any_up {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    format!("shard {si}: no replica reachable"),
                ));
            }
            shards.push(Shard {
                replicas,
                journal: Mutex::new(Journal::default()),
                rr: AtomicU64::new(si as u64),
                stats: ShardStats::default(),
                rng: Mutex::new(Rng::seed_from_u64(cfg.seed ^ (si as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))),
            });
        }
        let inner = Arc::new(Inner { map, shards, cfg, shutdown: AtomicBool::new(false) });
        let health = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || health_loop(&inner))
        };
        Ok(Router { inner, health: Mutex::new(Some(health)) })
    }

    /// The keyspace partition.
    pub fn map(&self) -> &ShardMap {
        &self.inner.map
    }

    /// Per-shard replica health, `out[shard][replica]`.
    pub fn replica_health(&self) -> Vec<Vec<bool>> {
        self.inner
            .shards
            .iter()
            .map(|s| s.replicas.iter().map(|r| r.healthy.load(Relaxed)).collect())
            .collect()
    }

    /// Points a replica at a new address (a restarted node) and hands it
    /// to the health loop, which reconnects and replays the journal tail
    /// before readmitting it to the read path.
    pub fn set_replica_addr(&self, shard: usize, replica: usize, addr: SocketAddr) {
        let r = &self.inner.shards[shard].replicas[replica];
        *r.addr.lock() = addr;
        r.mark_dead();
    }

    /// Resets a replica's replay cursor after a restart-with-recovery. The
    /// WAL can make a node durable *past* its last delivered ack (commit,
    /// then crash before the ack frame leaves), and replaying such an entry
    /// a second time is not idempotent for every target — so a restarted
    /// node reports how many update records its recovered structure had
    /// applied (the `seq` word of its commit descriptor) and the health
    /// loop resumes the journal replay exactly there. Call this before
    /// [`Router::set_replica_addr`] re-admits the node.
    pub fn set_replica_caught_up(&self, shard: usize, replica: usize, records: u64) {
        let s = &self.inner.shards[shard];
        let journal = s.journal.lock();
        // Clamp into the journal's live window: a cursor above the journal
        // is meaningless, and one below `base` addresses truncated entries
        // (impossible for a node that was ever in this group — truncation
        // never passes any replica's cursor — but clamp defensively).
        s.replicas[replica].caught_up.store(records.clamp(journal.base, journal.len()), Relaxed);
        drop(journal);
    }

    /// Routes one read. Scatters over every shard the query's x-range
    /// overlaps (in parallel when that is more than one), gathers, and
    /// merges into canonical order.
    pub fn query(&self, target: u16, deadline_ms: u32, op: &Op) -> Result<Body, RouterError> {
        if self.inner.shutdown.load(Relaxed) {
            return Err(RouterError::ShuttingDown);
        }
        if op.is_update() {
            return self.update(target, deadline_ms, op);
        }
        let Some(route) = self.inner.map.route(op) else {
            return Err(RouterError::BadRequest(format!(
                "op {} must target the router itself",
                op.name()
            )));
        };
        let shards: Vec<usize> = route.collect();
        let mut legs: Vec<Result<Body, RouterError>> = Vec::with_capacity(shards.len());
        if shards.len() == 1 {
            legs.push(self.shard_call(shards[0], target, deadline_ms, op));
        } else {
            std::thread::scope(|sc| {
                let handles: Vec<_> = shards
                    .iter()
                    .map(|&si| sc.spawn(move || self.shard_call(si, target, deadline_ms, op)))
                    .collect();
                for h in handles {
                    legs.push(h.join().unwrap_or_else(|_| {
                        Err(RouterError::Protocol { shard: usize::MAX, detail: "scatter leg panicked".into() })
                    }));
                }
            });
        }
        merge_legs(op, &shards, legs)
    }

    /// Routes one update to its owning shard and fans it out to every
    /// healthy replica. Acked iff ≥ 1 replica acked; non-acking replicas
    /// of an acked update are marked dead until replayed back in sync.
    pub fn update(&self, target: u16, deadline_ms: u32, op: &Op) -> Result<Body, RouterError> {
        if self.inner.shutdown.load(Relaxed) {
            return Err(RouterError::ShuttingDown);
        }
        let (Op::Insert(p) | Op::Delete(p)) = op else {
            return Err(RouterError::BadRequest(format!("op {} is not an update", op.name())));
        };
        let si = self.inner.map.shard_of(p.x);
        let shard = &self.inner.shards[si];
        shard.stats.requests.fetch_add(1, Relaxed);
        let started = Instant::now();

        // The journal lock serializes updates per shard: the journal order
        // IS the replication order replayed into lagging replicas.
        let mut journal = shard.journal.lock();
        let mut acked: Vec<usize> = Vec::new();
        let mut ack_body: Option<Body> = None;
        let mut typed: Option<(ErrorCode, String)> = None;
        let mut transport: Option<String> = None;
        for (ri, replica) in shard.replicas.iter().enumerate() {
            if !replica.healthy.load(Relaxed) {
                continue;
            }
            match replica.call(&self.inner.cfg, target, deadline_ms, op) {
                Ok(Response { body: body @ Body::Ack { .. }, .. }) => {
                    acked.push(ri);
                    ack_body.get_or_insert(body);
                }
                Ok(Response { body: Body::Error { code, message }, .. }) => {
                    if code.is_transient() {
                        // Admission-level rejection: definitely not applied,
                        // the replica's state is untouched — keep it live.
                        typed.get_or_insert((code, message));
                    } else {
                        // Storage/other: the replica's fate is ambiguous.
                        typed.get_or_insert((code, message));
                        replica.mark_dead();
                    }
                }
                Ok(resp) => {
                    typed.get_or_insert((
                        ErrorCode::BadRequest,
                        format!("unexpected update response {:?}", resp.body),
                    ));
                }
                Err(e) => {
                    transport.get_or_insert(e.to_string());
                    replica.mark_dead();
                }
            }
        }
        let result = if let Some(body) = ack_body {
            journal.push((target, op.clone()));
            let len = journal.len();
            for (ri, replica) in shard.replicas.iter().enumerate() {
                if acked.contains(&ri) {
                    replica.caught_up.store(len, Relaxed);
                } else if replica.healthy.load(Relaxed) {
                    // Alive but missed an acked update: out of the read
                    // path until the health loop replays it.
                    replica.mark_dead();
                }
            }
            // With every cursor settled, drop the prefix nobody needs; when
            // the whole group acked, that is the entry just pushed.
            shard.truncate_caught_up(&mut journal);
            Ok(body)
        } else if let Some((code, message)) = typed {
            Err(RouterError::Shard { shard: si, code, message })
        } else {
            Err(RouterError::ShardUnavailable {
                shard: si,
                detail: transport.unwrap_or_else(|| "no healthy replica".into()),
            })
        };
        drop(journal);
        shard.stats.latency_ns.record(started.elapsed().as_nanos() as u64);
        if result.is_err() {
            shard.stats.errors.fetch_add(1, Relaxed);
        }
        result
    }

    /// One scatter leg: read `op` from shard `si`, failing over across
    /// replicas and retrying full cycles under the backoff policy.
    fn shard_call(
        &self,
        si: usize,
        target: u16,
        deadline_ms: u32,
        op: &Op,
    ) -> Result<Body, RouterError> {
        let shard = &self.inner.shards[si];
        let cfg = &self.inner.cfg;
        shard.stats.requests.fetch_add(1, Relaxed);
        let started = Instant::now();
        let mut attempt = 1u32;
        let result = loop {
            let mut typed: Option<(ErrorCode, String)> = None;
            let mut transport: Option<String> = None;
            let start = shard.rr.fetch_add(1, Relaxed) as usize;
            let n = shard.replicas.len();
            let mut tried_any = false;
            for k in 0..n {
                let replica = &shard.replicas[(start + k) % n];
                if !replica.healthy.load(Relaxed) {
                    continue;
                }
                if tried_any {
                    shard.stats.failovers.fetch_add(1, Relaxed);
                }
                tried_any = true;
                match replica.call(cfg, target, deadline_ms, op) {
                    Ok(Response { body: Body::Error { code, message }, .. }) => {
                        typed.get_or_insert((code, message));
                        if !code.is_transient() {
                            // Deterministic failure: identical everywhere.
                            break;
                        }
                        // Transient: fail over to the next replica.
                    }
                    Ok(resp) => {
                        shard.stats.latency_ns.record(started.elapsed().as_nanos() as u64);
                        return Ok(resp.body);
                    }
                    Err(e) => {
                        transport.get_or_insert(e.to_string());
                        replica.mark_dead();
                    }
                }
            }
            // A full replica cycle failed. Deterministic typed errors are
            // final; transient conditions and dead groups go through the
            // backoff schedule (queries are idempotent — safe to retry).
            if let Some((code, _)) = typed {
                if !code.is_transient() || !cfg.retry.should_retry(attempt) {
                    let (code, message) = typed.expect("just matched");
                    break Err(RouterError::Shard { shard: si, code, message });
                }
            } else if !cfg.retry.should_retry(attempt) {
                break Err(RouterError::ShardUnavailable {
                    shard: si,
                    detail: transport.unwrap_or_else(|| "no healthy replica".into()),
                });
            }
            let delay = cfg.retry.delay(attempt, &mut shard.rng.lock());
            std::thread::sleep(delay);
            shard.stats.retries.fetch_add(1, Relaxed);
            attempt += 1;
        };
        shard.stats.latency_ns.record(started.elapsed().as_nanos() as u64);
        shard.stats.errors.fetch_add(1, Relaxed);
        result
    }

    /// Structured `(labelled name, value)` pairs for the per-shard
    /// `pc_shard_*` families — the ADMIN `Stats` form.
    pub fn stat_pairs(&self) -> Vec<(String, u64)> {
        let mut out = Vec::new();
        for (si, shard) in self.inner.shards.iter().enumerate() {
            let s = &shard.stats;
            let lbl = |family: &str| format!("{family}{{shard=\"{si}\"}}");
            out.push((lbl(names::REQUESTS), s.requests.load(Relaxed)));
            out.push((lbl(names::FAILOVERS), s.failovers.load(Relaxed)));
            out.push((lbl(names::RETRIES), s.retries.load(Relaxed)));
            out.push((lbl(names::ERRORS), s.errors.load(Relaxed)));
            out.push((lbl(names::REPLAYED), s.replayed.load(Relaxed)));
            out.push((lbl(names::RECONNECTS), s.reconnects.load(Relaxed)));
            out.push((lbl(names::JOURNAL_TRUNCATED), s.truncated.load(Relaxed)));
            out.push((lbl(names::DEAD_REPLICAS), shard.dead_replicas()));
            out.push((lbl(names::JOURNAL_LEN), shard.journal.lock().retained()));
            let q = s.latency_ns.snapshot();
            out.push((format!("{}_p50{{shard=\"{si}\"}}", names::LATENCY), q.quantile(0.50)));
            out.push((format!("{}_p99{{shard=\"{si}\"}}", names::LATENCY), q.quantile(0.99)));
            out.push((format!("{}_count{{shard=\"{si}\"}}", names::LATENCY), q.count));
        }
        out
    }

    /// Prometheus text exposition of the per-shard families.
    pub fn render_metrics(&self) -> String {
        type Read = fn(&Shard) -> u64;
        let counters: [(&str, Read); 7] = [
            (names::REQUESTS, |s| s.stats.requests.load(Relaxed)),
            (names::FAILOVERS, |s| s.stats.failovers.load(Relaxed)),
            (names::RETRIES, |s| s.stats.retries.load(Relaxed)),
            (names::ERRORS, |s| s.stats.errors.load(Relaxed)),
            (names::REPLAYED, |s| s.stats.replayed.load(Relaxed)),
            (names::RECONNECTS, |s| s.stats.reconnects.load(Relaxed)),
            (names::JOURNAL_TRUNCATED, |s| s.stats.truncated.load(Relaxed)),
        ];
        let gauges: [(&str, Read); 2] = [
            (names::DEAD_REPLICAS, Shard::dead_replicas),
            (names::JOURNAL_LEN, |s| s.journal.lock().retained()),
        ];
        let mut out = String::new();
        for (family, read) in counters {
            out.push_str(&format!("# TYPE {family} counter\n"));
            for (si, shard) in self.inner.shards.iter().enumerate() {
                out.push_str(&format!("{family}{{shard=\"{si}\"}} {}\n", read(shard)));
            }
        }
        for (family, read) in gauges {
            out.push_str(&format!("# TYPE {family} gauge\n"));
            for (si, shard) in self.inner.shards.iter().enumerate() {
                out.push_str(&format!("{family}{{shard=\"{si}\"}} {}\n", read(shard)));
            }
        }
        let family = names::LATENCY;
        out.push_str(&format!("# TYPE {family} histogram\n"));
        for (si, shard) in self.inner.shards.iter().enumerate() {
            let snap = shard.stats.latency_ns.snapshot();
            let mut cumulative = 0u64;
            for &(le, c) in &snap.buckets {
                cumulative += c;
                out.push_str(&format!("{family}_bucket{{shard=\"{si}\",le=\"{le}\"}} {cumulative}\n"));
            }
            out.push_str(&format!("{family}_bucket{{shard=\"{si}\",le=\"+Inf\"}} {}\n", snap.count));
            out.push_str(&format!("{family}_sum{{shard=\"{si}\"}} {}\n", snap.sum));
            out.push_str(&format!("{family}_count{{shard=\"{si}\"}} {}\n", snap.count));
        }
        out
    }

    /// True once shutdown was requested.
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutdown.load(Relaxed)
    }

    /// Drains the router and fans shutdown out to every replica of every
    /// shard (best effort — dead replicas are skipped). Idempotent.
    pub fn shutdown(&self) {
        if self.inner.shutdown.swap(true, Relaxed) {
            return;
        }
        for shard in &self.inner.shards {
            for replica in &shard.replicas {
                if let Some(mut c) = replica.checkout(self.inner.cfg.connect_timeout) {
                    let _ = c.shutdown_server();
                }
                replica.idle.lock().clear();
            }
        }
        if let Some(h) = self.health.lock().take() {
            let _ = h.join();
        }
    }

    /// Stops the router without touching the shards (they stay up).
    pub fn detach(&self) {
        self.inner.shutdown.store(true, Relaxed);
        if let Some(h) = self.health.lock().take() {
            let _ = h.join();
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.detach();
    }
}

/// Background replica maintenance: ping healthy replicas, reconnect dead
/// ones, replay the journal tail into a reconnected replica, and readmit
/// it to the read path only once it is exactly caught up.
fn health_loop(inner: &Inner) {
    while !inner.shutdown.load(Relaxed) {
        std::thread::sleep(inner.cfg.health_interval);
        if inner.shutdown.load(Relaxed) {
            return;
        }
        for shard in &inner.shards {
            for replica in &shard.replicas {
                if inner.shutdown.load(Relaxed) {
                    return;
                }
                if replica.healthy.load(Relaxed) {
                    // Liveness probe; admin ops bypass the shard's queues.
                    let pong = replica.checkout(inner.cfg.connect_timeout).and_then(|mut c| {
                        matches!(c.ping(), Ok(Response { body: Body::Pong, .. })).then_some(c)
                    });
                    match pong {
                        Some(c) => replica.checkin(c, inner.cfg.pool_per_replica),
                        None => replica.mark_dead(),
                    }
                } else {
                    revive_replica(inner, shard, replica);
                }
            }
        }
    }
}

/// Reconnect + catch-up for one dead replica. The final healthy flip
/// happens under the journal lock, so an update fan-out can never observe
/// a replica that is healthy yet behind.
fn revive_replica(inner: &Inner, shard: &Shard, replica: &Replica) {
    let addr = *replica.addr.lock();
    let Ok(mut client) = Client::connect(addr, inner.cfg.connect_timeout) else {
        return;
    };
    if client.ping().is_err() {
        return;
    }
    loop {
        let tail: Vec<(u16, Op)> = {
            let mut journal = shard.journal.lock();
            let from = replica.caught_up.load(Relaxed);
            if from >= journal.len() {
                replica.healthy.store(true, Relaxed);
                replica.idle.lock().push(client);
                shard.stats.reconnects.fetch_add(1, Relaxed);
                // This replica may have been the laggard pinning the
                // journal's base; reclaim whatever its catch-up freed.
                shard.truncate_caught_up(&mut journal);
                return;
            }
            journal.tail_from(from)
        };
        for (target, op) in &tail {
            match client.call(*target, 0, op.clone()) {
                Ok(Response { body: Body::Ack { .. }, .. }) => {
                    shard.stats.replayed.fetch_add(1, Relaxed);
                    replica.caught_up.fetch_add(1, Relaxed);
                }
                // Any non-ack leaves the replica behind; retry next tick.
                _ => return,
            }
        }
    }
}

/// Gathers scatter legs (shard order) into one canonical body.
fn merge_legs(
    op: &Op,
    shards: &[usize],
    legs: Vec<Result<Body, RouterError>>,
) -> Result<Body, RouterError> {
    let mut points: Vec<Point> = Vec::new();
    let mut intervals: Vec<Interval> = Vec::new();
    let mut keys: Vec<(i64, u64)> = Vec::new();
    for (leg, &si) in legs.into_iter().zip(shards) {
        match leg? {
            Body::Points(mut v) => points.append(&mut v),
            Body::Intervals(mut v) => intervals.append(&mut v),
            Body::Keys(mut v) => keys.append(&mut v),
            other => {
                return Err(RouterError::Protocol {
                    shard: si,
                    detail: format!("unexpected body {other:?} for op {}", op.name()),
                })
            }
        }
    }
    let merged = match op {
        Op::Range1d { .. } => Body::Keys(keys),
        Op::Stab { .. } => Body::Intervals(intervals),
        Op::TwoSided { .. } | Op::ThreeSided { .. } => Body::Points(points),
        other => {
            return Err(RouterError::BadRequest(format!("op {} is not a read", other.name())))
        }
    };
    Ok(canonicalize(merged))
}

/// The router's canonical result order: points by `(x, y, id)`, intervals
/// by `(lo, hi, id)`, keys by `(key, value)`; other bodies pass through.
/// A single-node target's answer, canonicalized the same way, is
/// bit-identical to the router's merged answer over the same data.
pub fn canonicalize(body: Body) -> Body {
    match body {
        Body::Points(mut v) => {
            v.sort_unstable_by_key(|p| (p.x, p.y, p.id));
            Body::Points(v)
        }
        Body::Intervals(mut v) => {
            v.sort_unstable_by_key(|iv| (iv.lo, iv.hi, iv.id));
            Body::Intervals(v)
        }
        Body::Keys(mut v) => {
            v.sort_unstable();
            Body::Keys(v)
        }
        other => other,
    }
}

/// Front-end tuning knobs for [`RouterFrontend::spawn`].
#[derive(Debug, Clone)]
pub struct FrontendConfig {
    /// Listen address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Read-timeout tick for the polling connection loops.
    pub poll_tick: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// Close a connection after this long without a complete frame.
    pub idle_timeout: Duration,
    /// Frame-size cap.
    pub max_frame: usize,
}

impl Default for FrontendConfig {
    fn default() -> FrontendConfig {
        FrontendConfig {
            addr: "127.0.0.1:0".to_string(),
            poll_tick: Duration::from_millis(20),
            write_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(30),
            max_frame: MAX_FRAME,
        }
    }
}

/// The wire front-end: clients speak the unchanged v2 protocol to the
/// router exactly as they would to a single node. Thin by design — the
/// shards own admission control, batching, and deadlines; the front-end
/// only frames, routes, and translates [`RouterError`]s into typed wire
/// errors. ADMIN `Stats`/`Metrics` expose the `pc_shard_*` families;
/// ADMIN `Shutdown` drains the router and fans out to the shards.
pub struct RouterFrontend;

impl RouterFrontend {
    /// Binds `cfg.addr` and spawns the acceptor; one thread per connection.
    pub fn spawn(router: Arc<Router>, cfg: FrontendConfig) -> io::Result<FrontendHandle> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let router = Arc::clone(&router);
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                while !stop.load(Relaxed) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            let _ = stream.set_nodelay(true);
                            let _ = stream.set_read_timeout(Some(cfg.poll_tick));
                            let _ = stream.set_write_timeout(Some(cfg.write_timeout));
                            let router = Arc::clone(&router);
                            let stop = Arc::clone(&stop);
                            let cfg = cfg.clone();
                            let handle = std::thread::spawn(move || {
                                frontend_conn_loop(&router, &stop, &cfg, stream)
                            });
                            let mut g = conns.lock();
                            g.retain(|h| !h.is_finished());
                            g.push(handle);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(cfg.poll_tick.min(Duration::from_millis(10)));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(10)),
                    }
                }
            })
        };
        Ok(FrontendHandle { addr, router, stop, acceptor: Some(acceptor), conns })
    }
}

fn frontend_respond(stream: &TcpStream, resp: &Response) -> bool {
    let frame = response_frame(resp);
    let mut w = stream;
    std::io::Write::write_all(&mut w, frame.as_slice()).is_ok()
}

fn frontend_conn_loop(
    router: &Router,
    stop: &AtomicBool,
    cfg: &FrontendConfig,
    stream: TcpStream,
) {
    let mut reader = FrameReader::new(cfg.max_frame);
    let mut last_activity = Instant::now();
    let mut seen_bytes = 0u64;
    loop {
        if stop.load(Relaxed) {
            return;
        }
        match reader.poll(&mut (&stream)) {
            Ok(FrameProgress::Frame(payload)) => {
                last_activity = Instant::now();
                let req = match decode_request(&payload) {
                    Ok(req) => req,
                    Err(e) => {
                        let _ = frontend_respond(
                            &stream,
                            &Response::error(0, ErrorCode::BadRequest, e.to_string()),
                        );
                        return;
                    }
                };
                let resp = match &req.op {
                    Op::Ping => Response { id: req.id, body: Body::Pong },
                    Op::Stats => Response { id: req.id, body: Body::Stats(router.stat_pairs()) },
                    Op::Metrics => {
                        Response { id: req.id, body: Body::Metrics(router.render_metrics()) }
                    }
                    Op::Shutdown => Response { id: req.id, body: Body::ShutdownAck },
                    Op::SlowLog { .. } | Op::SetSampling { .. } => Response::error(
                        req.id,
                        ErrorCode::Unsupported,
                        format!("op {} is not served by the router", req.op.name()),
                    ),
                    op => match router.query(req.target, req.deadline_ms, op) {
                        Ok(body) => Response { id: req.id, body },
                        Err(e) => Response::error(req.id, e.code(), e.to_string()),
                    },
                };
                let shutdown = matches!(req.op, Op::Shutdown);
                if !frontend_respond(&stream, &resp) {
                    let _ = stream.shutdown(Shutdown::Both);
                    return;
                }
                if shutdown {
                    stop.store(true, Relaxed);
                    router.shutdown();
                    return;
                }
            }
            Ok(FrameProgress::Pending) => {
                if reader.bytes_read() != seen_bytes {
                    seen_bytes = reader.bytes_read();
                    last_activity = Instant::now();
                } else if last_activity.elapsed() >= cfg.idle_timeout {
                    let _ = stream.shutdown(Shutdown::Both);
                    return;
                }
            }
            Ok(FrameProgress::Eof) | Err(_) => return,
        }
    }
}

/// Owner handle for a running front-end. Dropping it stops the acceptor
/// and joins every connection thread (the router itself is shared and
/// survives unless [`Router::shutdown`] ran).
pub struct FrontendHandle {
    addr: SocketAddr,
    router: Arc<Router>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl FrontendHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The routed fabric.
    pub fn router(&self) -> &Arc<Router> {
        &self.router
    }

    /// Stops accepting and drains connection threads; does not touch the
    /// shards (use [`Router::shutdown`] — or the wire ADMIN op — for a
    /// full fabric drain).
    pub fn stop(&self) {
        self.stop.store(true, Relaxed);
    }

    /// Stops and joins everything.
    pub fn join(mut self) {
        self.join_inner();
    }

    fn join_inner(&mut self) {
        self.stop.store(true, Relaxed);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        loop {
            let Some(h) = self.conns.lock().pop() else { break };
            let _ = h.join();
        }
    }
}

impl Drop for FrontendHandle {
    fn drop(&mut self) {
        self.join_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_map_routes_keys_and_ranges() {
        let map = ShardMap::new(vec![100, 200]);
        assert_eq!(map.shards(), 3);
        assert_eq!(map.shard_of(-5), 0);
        assert_eq!(map.shard_of(99), 0);
        assert_eq!(map.shard_of(100), 1);
        assert_eq!(map.shard_of(199), 1);
        assert_eq!(map.shard_of(200), 2);
        assert_eq!(map.shard_range(0, 99), 0..=0);
        assert_eq!(map.shard_range(50, 150), 0..=1);
        assert_eq!(map.shard_range(0, 1000), 0..=2);
        assert_eq!(map.shard_range(150, 150), 1..=1);

        assert_eq!(map.route(&Op::Range1d { lo: 0, hi: 120 }), Some(0..=1));
        assert_eq!(map.route(&Op::Stab { q: 200 }), Some(2..=2));
        assert_eq!(map.route(&Op::TwoSided { x0: 150, y0: 0 }), Some(1..=2));
        assert_eq!(map.route(&Op::ThreeSided { x1: 10, x2: 20, y0: 0 }), Some(0..=0));
        assert_eq!(map.route(&Op::Insert(Point { x: 100, y: 1, id: 1 })), Some(1..=1));
        assert_eq!(map.route(&Op::Ping), None);

        // The single-shard degenerate map routes everything to shard 0.
        let one = ShardMap::new(Vec::new());
        assert_eq!(one.shards(), 1);
        assert_eq!(one.route(&Op::TwoSided { x0: i64::MIN, y0: 0 }), Some(0..=0));
    }

    #[test]
    fn partitioning_covers_and_replicates_correctly() {
        let map = ShardMap::new(vec![10, 20]);
        let points: Vec<Point> =
            (0..30).map(|i| Point { x: i, y: i, id: i as u64 }).collect();
        let parts = map.partition_points(&points);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 30);
        assert!(parts[0].iter().all(|p| p.x < 10));
        assert!(parts[1].iter().all(|p| (10..20).contains(&p.x)));
        assert!(parts[2].iter().all(|p| p.x >= 20));

        // An interval spanning a split lives on every shard it overlaps.
        let ivs = vec![
            Interval { lo: 5, hi: 15, id: 1 },
            Interval { lo: 0, hi: 30, id: 2 },
            Interval { lo: 21, hi: 22, id: 3 },
        ];
        let parts = map.partition_intervals(&ivs);
        assert_eq!(parts[0].iter().map(|iv| iv.id).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(parts[1].iter().map(|iv| iv.id).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(parts[2].iter().map(|iv| iv.id).collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn quantile_splits_are_strictly_increasing_and_balanced() {
        let keys: Vec<i64> = (0..1000).map(|i| (i * 37) % 5000).collect();
        for shards in 1..=8 {
            let splits = ShardMap::quantile_splits(&keys, shards);
            assert!(splits.len() < shards || shards == 1);
            assert!(splits.windows(2).all(|w| w[0] < w[1]), "{splits:?}");
            let map = ShardMap::new(splits);
            // No shard is empty for this spread of keys.
            let counts: Vec<usize> =
                map.partition_entries(&keys.iter().map(|&k| (k, 0u64)).collect::<Vec<_>>())
                    .iter()
                    .map(Vec::len)
                    .collect();
            assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
        }
        // Degenerate inputs.
        assert!(ShardMap::quantile_splits(&[], 4).is_empty());
        assert_eq!(ShardMap::quantile_splits(&[7, 7, 7, 7], 4), Vec::<i64>::new());
    }

    #[test]
    fn canonicalize_sorts_every_result_kind() {
        let body = canonicalize(Body::Points(vec![
            Point { x: 2, y: 0, id: 0 },
            Point { x: 1, y: 5, id: 2 },
            Point { x: 1, y: 5, id: 1 },
        ]));
        match body {
            Body::Points(v) => {
                assert_eq!(v.iter().map(|p| p.id).collect::<Vec<_>>(), vec![1, 2, 0]);
            }
            other => panic!("{other:?}"),
        }
        let body = canonicalize(Body::Keys(vec![(3, 0), (1, 9), (2, 4)]));
        assert_eq!(body, Body::Keys(vec![(1, 9), (2, 4), (3, 0)]));
        let body = canonicalize(Body::Intervals(vec![
            Interval { lo: 4, hi: 9, id: 1 },
            Interval { lo: 1, hi: 9, id: 2 },
        ]));
        match body {
            Body::Intervals(v) => assert_eq!(v[0].id, 2),
            other => panic!("{other:?}"),
        }
        // Non-result bodies pass through untouched.
        assert_eq!(canonicalize(Body::Pong), Body::Pong);
    }

    #[test]
    fn router_error_codes_map_onto_the_wire() {
        let e = RouterError::Shard { shard: 3, code: ErrorCode::Overloaded, message: "q".into() };
        assert_eq!(e.code(), ErrorCode::Overloaded);
        assert!(e.to_string().contains("shard 3"));
        assert_eq!(
            RouterError::ShardUnavailable { shard: 0, detail: "x".into() }.code(),
            ErrorCode::Storage
        );
        assert_eq!(RouterError::ShuttingDown.code(), ErrorCode::ShuttingDown);
        assert_eq!(RouterError::BadRequest("m".into()).code(), ErrorCode::BadRequest);
    }
}
