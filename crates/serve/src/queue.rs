//! Bounded MPMC queue — the admission-control point of the server.
//!
//! The queue never blocks a producer: [`Bounded::try_push`] either admits
//! the item or returns it to the caller immediately ([`PushError::Full`]),
//! which the connection layer turns into an `Overloaded` response. That is
//! the whole admission-control policy: backlog is capped at `capacity`, so
//! queueing delay for admitted requests is bounded by `capacity ×
//! worst-case service time` and overload degrades into fast, explicit
//! rejections instead of an unbounded latency tail.
//!
//! Consumers block on a condition variable; [`Bounded::close`] wakes them
//! all, and [`Bounded::pop`] keeps draining already-admitted items after
//! close (drain-then-shutdown) before reporting exhaustion with `None`.

use std::collections::VecDeque;

use pc_sync::{Condvar, Mutex};

/// Why a push was refused; the rejected item is handed back.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity — shed the item (admission control).
    Full(T),
    /// The queue is closed — the server is draining.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue.
pub struct Bounded<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> Bounded<T> {
    /// A queue admitting at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Bounded<T> {
        Bounded {
            inner: Mutex::new(Inner { items: VecDeque::new(), closed: false }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Maximum backlog this queue admits.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current backlog length.
    pub fn len(&self) -> usize {
        self.inner.lock().items.len()
    }

    /// True when the backlog is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admits `item` without ever blocking, or returns it with the reason.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut g = self.inner.lock();
        if g.closed {
            return Err(PushError::Closed(item));
        }
        if g.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        g.items.push_back(item);
        drop(g);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until an item is available or the queue is closed *and*
    /// drained; `None` means no item will ever arrive again.
    pub fn pop(&self) -> Option<T> {
        let mut g = self.inner.lock();
        loop {
            if let Some(item) = g.items.pop_front() {
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = self.not_empty.wait(g);
        }
    }

    /// Takes an item if one is ready, never blocking (used by the batcher
    /// to coalesce whatever is already queued).
    pub fn try_pop(&self) -> Option<T> {
        self.inner.lock().items.pop_front()
    }

    /// Closes the queue: future pushes fail with [`PushError::Closed`],
    /// consumers drain the remaining backlog and then see `None`.
    pub fn close(&self) {
        self.inner.lock().closed = true;
        self.not_empty.notify_all();
    }

    /// True once [`Bounded::close`] has run.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo_and_full() {
        let q = Bounded::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_pop(), Some(2));
        assert_eq!(q.try_pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn close_drains_then_ends() {
        let q = Bounded::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert_eq!(q.try_push("c"), Err(PushError::Closed("c")));
        // Already-admitted work still drains after close.
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
        assert!(q.is_closed());
    }

    #[test]
    fn blocked_consumer_wakes_on_push_and_close() {
        let q = Arc::new(Bounded::new(1));
        let q2 = q.clone();
        let t = std::thread::spawn(move || {
            let first = q2.pop();
            let second = q2.pop();
            (first, second)
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(7).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        let (first, second) = t.join().unwrap();
        assert_eq!(first, Some(7));
        assert_eq!(second, None);
    }

    #[test]
    fn mpmc_delivers_every_item_exactly_once() {
        let q = Arc::new(Bounded::new(8));
        let total = 200u64;
        std::thread::scope(|s| {
            let mut consumers = Vec::new();
            for _ in 0..3 {
                let q = q.clone();
                consumers.push(s.spawn(move || {
                    let mut sum = 0u64;
                    while let Some(v) = q.pop() {
                        sum += v;
                    }
                    sum
                }));
            }
            for i in 1..=total {
                // Producers spin on Full: the queue is deliberately tiny.
                let mut item = i;
                loop {
                    match q.try_push(item) {
                        Ok(()) => break,
                        Err(PushError::Full(v)) => {
                            item = v;
                            std::thread::yield_now();
                        }
                        Err(PushError::Closed(_)) => panic!("closed early"),
                    }
                }
            }
            q.close();
            let got: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
            assert_eq!(got, total * (total + 1) / 2);
        });
    }
}
