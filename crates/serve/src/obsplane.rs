//! The server's live observability plane: per-target metric families,
//! store-level (WAL + pool) families, and the group-commit observer.
//!
//! Everything here is **always compiled** — built on relaxed atomics and
//! the always-on `pc_obs::hist` histogram, like `ServeStats` — so a release
//! binary without the `obs` cargo feature still serves the full ADMIN
//! `Metrics`/`Stats` surface. Names come from [`pc_obs::target_metrics`]
//! and [`pc_obs::store_metrics`]; per-target families carry a
//! `{target="name"}` label so one scrape separates tenants sharing the
//! store. The structured form of the same families rides in the ADMIN
//! `Stats` pairs (the labelled name is the pair key), which is what
//! `pc-loadgen --scrape` records into the bench artifact.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

use pc_obs::hist::Histogram;
use pc_obs::{store_metrics, target_metrics, version_metrics, QueryTrace};
use pc_pagestore::{PageStore, StoreObserver, VersionMetrics};

/// Always-on counters and latency distribution for one registered target.
#[derive(Default)]
pub struct TargetStats {
    /// Well-formed requests routed at this target (admitted or shed).
    pub requests: AtomicU64,
    /// Queries answered successfully.
    pub queries_ok: AtomicU64,
    /// Updates acknowledged successfully.
    pub updates_ok: AtomicU64,
    /// Requests answered with any error.
    pub errors: AtomicU64,
    /// Execution latency (dequeue to response built), nanoseconds.
    pub latency_ns: Histogram,
    /// Update batches applied against this target.
    pub batches: AtomicU64,
    /// Updates carried inside those batches.
    pub batched_updates: AtomicU64,
    /// Sampled traces retained for this target.
    pub traces: AtomicU64,
    /// Total transfers observed inside those traces.
    pub traced_io: AtomicU64,
    /// §3 wasteful transfers observed inside those traces.
    pub traced_wasteful: AtomicU64,
}

impl TargetStats {
    /// Folds one finished sampled trace into the trace aggregates.
    pub fn absorb_trace(&self, trace: &QueryTrace) {
        self.traces.fetch_add(1, Relaxed);
        self.traced_io.fetch_add(trace.total_io, Relaxed);
        self.traced_wasteful.fetch_add(trace.wasteful_ios, Relaxed);
    }
}

/// The per-target families for every registered target, indexed by wire
/// target id. Built once at server spawn (registration is fixed for the
/// server's lifetime), so lookups are lock-free.
pub struct TargetStatsSet {
    entries: Vec<(String, TargetStats)>,
}

impl TargetStatsSet {
    /// One `TargetStats` per registered target, labelled by its name.
    pub fn new(names: Vec<String>) -> TargetStatsSet {
        TargetStatsSet {
            entries: names.into_iter().map(|n| (n, TargetStats::default())).collect(),
        }
    }

    /// Stats for a wire target id, if registered.
    pub fn get(&self, id: u16) -> Option<&TargetStats> {
        self.entries.get(id as usize).map(|(_, s)| s)
    }

    /// The name a target id's family is labelled with.
    pub fn name(&self, id: u16) -> Option<&str> {
        self.entries.get(id as usize).map(|(n, _)| n.as_str())
    }

    /// `(labelled name, value)` pairs — the structured (binary) form of the
    /// per-target families, carried in the ADMIN `Stats` body.
    pub fn stat_pairs(&self) -> Vec<(String, u64)> {
        let mut out = Vec::new();
        for (name, s) in &self.entries {
            let lbl = |family: &str| format!("{family}{{target=\"{name}\"}}");
            out.push((lbl(target_metrics::REQUESTS), s.requests.load(Relaxed)));
            out.push((lbl(target_metrics::QUERIES_OK), s.queries_ok.load(Relaxed)));
            out.push((lbl(target_metrics::UPDATES_OK), s.updates_ok.load(Relaxed)));
            out.push((lbl(target_metrics::ERRORS), s.errors.load(Relaxed)));
            out.push((lbl(target_metrics::BATCHES), s.batches.load(Relaxed)));
            out.push((lbl(target_metrics::BATCHED_UPDATES), s.batched_updates.load(Relaxed)));
            out.push((lbl(target_metrics::TRACES), s.traces.load(Relaxed)));
            out.push((lbl(target_metrics::TRACED_IO), s.traced_io.load(Relaxed)));
            out.push((lbl(target_metrics::TRACED_WASTEFUL), s.traced_wasteful.load(Relaxed)));
            let q = s.latency_ns.snapshot();
            out.push((format!("{}_p50{{target=\"{name}\"}}", target_metrics::LATENCY), q.quantile(0.50)));
            out.push((format!("{}_p99{{target=\"{name}\"}}", target_metrics::LATENCY), q.quantile(0.99)));
            out.push((format!("{}_count{{target=\"{name}\"}}", target_metrics::LATENCY), q.count));
        }
        out
    }

    /// Prometheus text exposition of the per-target families. Each family
    /// is typed once, then emits one labelled sample per target.
    pub fn render_text(&self) -> String {
        type CounterRead = fn(&TargetStats) -> u64;
        let mut out = String::new();
        let counters: [(&str, CounterRead); 9] = [
            (target_metrics::REQUESTS, |s| s.requests.load(Relaxed)),
            (target_metrics::QUERIES_OK, |s| s.queries_ok.load(Relaxed)),
            (target_metrics::UPDATES_OK, |s| s.updates_ok.load(Relaxed)),
            (target_metrics::ERRORS, |s| s.errors.load(Relaxed)),
            (target_metrics::BATCHES, |s| s.batches.load(Relaxed)),
            (target_metrics::BATCHED_UPDATES, |s| s.batched_updates.load(Relaxed)),
            (target_metrics::TRACES, |s| s.traces.load(Relaxed)),
            (target_metrics::TRACED_IO, |s| s.traced_io.load(Relaxed)),
            (target_metrics::TRACED_WASTEFUL, |s| s.traced_wasteful.load(Relaxed)),
        ];
        for (family, read) in counters {
            out.push_str(&format!("# TYPE {family} counter\n"));
            for (name, s) in &self.entries {
                out.push_str(&format!("{family}{{target=\"{name}\"}} {}\n", read(s)));
            }
        }
        let family = target_metrics::LATENCY;
        out.push_str(&format!("# TYPE {family} histogram\n"));
        for (name, s) in &self.entries {
            let snap = s.latency_ns.snapshot();
            let mut cumulative = 0u64;
            for &(le, c) in &snap.buckets {
                cumulative += c;
                out.push_str(&format!(
                    "{family}_bucket{{target=\"{name}\",le=\"{le}\"}} {cumulative}\n"
                ));
            }
            out.push_str(&format!(
                "{family}_bucket{{target=\"{name}\",le=\"+Inf\"}} {}\n",
                snap.count
            ));
            out.push_str(&format!("{family}_sum{{target=\"{name}\"}} {}\n", snap.sum));
            out.push_str(&format!("{family}_count{{target=\"{name}\"}} {}\n", snap.count));
        }
        out
    }
}

/// [`StoreObserver`] recording the distribution of group-commit sizes —
/// the cumulative `WalStats` only carry the max. Registered on the shared
/// store at server spawn; the histogram is always on.
#[derive(Default)]
pub struct GroupCommitObserver {
    /// Records made durable per group commit.
    pub records_per_commit: Histogram,
}

impl StoreObserver for GroupCommitObserver {
    fn on_group_commit(&self, records: u64) {
        self.records_per_commit.record(records);
    }
}

/// Buffer-pool hit ratio in parts-per-million: `hits / (hits + reads)`.
/// PPM keeps the exposition integer-only (the wire `Stats` body carries
/// `u64`s); 1_000_000 means every access hit the pool or dirty table.
pub fn pool_hit_ratio_ppm(cache_hits: u64, reads: u64) -> u64 {
    // u128 throughout: the counters (and their sum) can overflow u64 math
    // on long runs.
    let total = cache_hits as u128 + reads as u128;
    if total == 0 {
        return 0;
    }
    ((cache_hits as u128 * 1_000_000) / total) as u64
}

/// `(name, value)` pairs for the store-level families (structured form).
pub fn store_stat_pairs(store: &PageStore, commits: &GroupCommitObserver) -> Vec<(String, u64)> {
    let io = store.stats();
    let mut out = vec![(
        store_metrics::POOL_HIT_RATIO_PPM.to_string(),
        pool_hit_ratio_ppm(io.cache_hits, io.reads),
    )];
    if let Some(w) = store.wal_stats() {
        let snap = commits.records_per_commit.snapshot();
        out.extend([
            (store_metrics::WAL_APPENDS.to_string(), w.appends),
            (store_metrics::WAL_COMMITS.to_string(), w.commits),
            (store_metrics::WAL_FSYNCS.to_string(), w.fsyncs),
            (store_metrics::WAL_CHECKPOINTS.to_string(), w.checkpoints),
            (store_metrics::WAL_REPLAYED.to_string(), w.replayed),
            (store_metrics::WAL_LOG_BYTES.to_string(), w.log_bytes),
            (store_metrics::WAL_DIRTY_PAGES.to_string(), w.dirty_pages),
            (format!("{}_p50", store_metrics::WAL_GROUP_COMMIT_RECORDS), snap.quantile(0.50)),
            (format!("{}_count", store_metrics::WAL_GROUP_COMMIT_RECORDS), snap.count),
        ]);
    }
    out
}

/// Prometheus text exposition of the store-level families.
pub fn render_store_metrics(store: &PageStore, commits: &GroupCommitObserver) -> String {
    let io = store.stats();
    let mut out = format!(
        "# TYPE {family} gauge\n{family} {}\n",
        pool_hit_ratio_ppm(io.cache_hits, io.reads),
        family = store_metrics::POOL_HIT_RATIO_PPM,
    );
    if let Some(w) = store.wal_stats() {
        for (family, v) in [
            (store_metrics::WAL_APPENDS, w.appends),
            (store_metrics::WAL_COMMITS, w.commits),
            (store_metrics::WAL_FSYNCS, w.fsyncs),
            (store_metrics::WAL_CHECKPOINTS, w.checkpoints),
            (store_metrics::WAL_REPLAYED, w.replayed),
        ] {
            out.push_str(&format!("# TYPE {family} counter\n{family} {v}\n"));
        }
        for (family, v) in [
            (store_metrics::WAL_LOG_BYTES, w.log_bytes),
            (store_metrics::WAL_DIRTY_PAGES, w.dirty_pages),
        ] {
            out.push_str(&format!("# TYPE {family} gauge\n{family} {v}\n"));
        }
        let family = store_metrics::WAL_GROUP_COMMIT_RECORDS;
        let snap = commits.records_per_commit.snapshot();
        out.push_str(&format!("# TYPE {family} histogram\n"));
        let mut cumulative = 0u64;
        for &(le, c) in &snap.buckets {
            cumulative += c;
            out.push_str(&format!("{family}_bucket{{le=\"{le}\"}} {cumulative}\n"));
        }
        out.push_str(&format!("{family}_bucket{{le=\"+Inf\"}} {}\n", snap.count));
        out.push_str(&format!("{family}_sum {}\n{family}_count {}\n", snap.sum, snap.count));
    }
    out
}

/// `(name, value)` pairs for the `pc_version_*` families (structured
/// form), rendered from a [`VersionMetrics`] point-in-time snapshot.
pub fn version_stat_pairs(m: &VersionMetrics) -> Vec<(String, u64)> {
    vec![
        (version_metrics::EPOCHS_INSTALLED.to_string(), m.installed),
        (version_metrics::EPOCHS_RETAINED.to_string(), m.retained),
        (version_metrics::PAGES_RECLAIMED.to_string(), m.reclaimed_pages),
        (version_metrics::SNAPSHOTS_PINNED.to_string(), m.pinned),
        (version_metrics::OLDEST_PIN_AGE.to_string(), m.oldest_pin_age),
    ]
}

/// Prometheus text exposition of the `pc_version_*` families.
pub fn render_version_metrics(m: &VersionMetrics) -> String {
    let mut out = String::new();
    for (family, v) in [
        (version_metrics::EPOCHS_INSTALLED, m.installed),
        (version_metrics::PAGES_RECLAIMED, m.reclaimed_pages),
    ] {
        out.push_str(&format!("# TYPE {family} counter\n{family} {v}\n"));
    }
    for (family, v) in [
        (version_metrics::EPOCHS_RETAINED, m.retained),
        (version_metrics::SNAPSHOTS_PINNED, m.pinned),
        (version_metrics::OLDEST_PIN_AGE, m.oldest_pin_age),
    ] {
        out.push_str(&format!("# TYPE {family} gauge\n{family} {v}\n"));
    }
    out
}

/// Convenience: registers a fresh [`GroupCommitObserver`] on `store` and
/// returns the shared handle the server keeps for rendering.
pub fn install_commit_observer(store: &PageStore) -> Arc<GroupCommitObserver> {
    let obs = Arc::new(GroupCommitObserver::default());
    store.set_observer(Arc::clone(&obs) as Arc<dyn StoreObserver>);
    obs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_families_render_with_labels_and_match_pairs() {
        let set = TargetStatsSet::new(vec!["pst/main".into(), "btree/aux".into()]);
        let s = set.get(0).unwrap();
        s.requests.fetch_add(5, Relaxed);
        s.queries_ok.fetch_add(4, Relaxed);
        s.errors.fetch_add(1, Relaxed);
        s.latency_ns.record(1000);
        set.get(1).unwrap().requests.fetch_add(2, Relaxed);

        let text = set.render_text();
        assert!(text.contains("# TYPE pc_target_requests_total counter"), "{text}");
        assert!(text.contains("pc_target_requests_total{target=\"pst/main\"} 5"), "{text}");
        assert!(text.contains("pc_target_requests_total{target=\"btree/aux\"} 2"), "{text}");
        assert!(text.contains("pc_target_latency_ns_count{target=\"pst/main\"} 1"), "{text}");

        let pairs = set.stat_pairs();
        let get = |n: &str| pairs.iter().find(|(k, _)| k == n).map(|&(_, v)| v).unwrap();
        assert_eq!(get("pc_target_requests_total{target=\"pst/main\"}"), 5);
        assert_eq!(get("pc_target_errors_total{target=\"pst/main\"}"), 1);
        assert_eq!(get("pc_target_requests_total{target=\"btree/aux\"}"), 2);
    }

    #[test]
    fn absorb_trace_accumulates_section3_aggregates() {
        use pc_obs::{IoDelta, SpanKind, SpanNode};
        let set = TargetStatsSet::new(vec!["t".into()]);
        let root = SpanNode {
            name: "q",
            arg: 0,
            kind: SpanKind::Output,
            io: IoDelta { reads: 9, ..IoDelta::default() },
            self_reads: 9,
            items: 4,
            block_capacity: 2,
            children: Vec::new(),
        };
        let trace = QueryTrace {
            name: "q",
            latency_ns: 10,
            total_io: 9,
            search_ios: 0,
            wasteful_ios: root.wasteful(),
            items: 4,
            root,
        };
        let s = set.get(0).unwrap();
        s.absorb_trace(&trace);
        s.absorb_trace(&trace);
        assert_eq!(s.traces.load(Relaxed), 2);
        assert_eq!(s.traced_io.load(Relaxed), 18);
        assert_eq!(s.traced_wasteful.load(Relaxed), 2 * (9 - 4 / 2));
    }

    #[test]
    fn pool_hit_ratio_is_ppm_and_total() {
        assert_eq!(pool_hit_ratio_ppm(0, 0), 0);
        assert_eq!(pool_hit_ratio_ppm(1, 0), 1_000_000);
        assert_eq!(pool_hit_ratio_ppm(1, 1), 500_000);
        assert_eq!(pool_hit_ratio_ppm(u64::MAX, u64::MAX), 500_000);
    }

    #[test]
    fn commit_observer_records_group_sizes_from_the_store() {
        let (store, _) = PageStore::in_memory_durable(256);
        let obs = install_commit_observer(&store);
        let id = store.alloc().unwrap();
        store.write(id, &vec![7u8; 256]).unwrap();
        store.commit_with(b"t").unwrap();
        let snap = obs.records_per_commit.snapshot();
        assert_eq!(snap.count, 1, "one non-empty commit observed");
        // An empty commit (nothing pending) must not fire the observer.
        store.commit_with(b"t").unwrap();
        assert_eq!(obs.records_per_commit.snapshot().count, 1);
        let pairs = store_stat_pairs(&store, &obs);
        let get = |n: &str| pairs.iter().find(|(k, _)| k == n).map(|&(_, v)| v);
        assert!(get("pc_store_wal_commits_total").unwrap() >= 1);
        assert_eq!(get("pc_store_wal_group_commit_records_count"), Some(1));
        let text = render_store_metrics(&store, &obs);
        assert!(text.contains("# TYPE pc_store_wal_commits_total counter"), "{text}");
        assert!(text.contains("pc_store_wal_group_commit_records_count 1"), "{text}");
    }
}
