//! # pc-serve — a concurrent query service over the path-cached structures
//!
//! The ROADMAP north star is a system that serves external-searching
//! queries under real traffic; this crate is the request path. It turns the
//! workspace's structures (B-tree range, segment/interval-tree stabbing,
//! 2-/3-sided PST queries, dynamic PST updates) into a TCP service with:
//!
//! * a **length-prefixed binary wire protocol** ([`wire`]) — versioned
//!   header, request ids, typed ops and typed error responses, with a
//!   total (never-panicking) decoder and zero-copy [`Page`]-backed
//!   response frames;
//! * **admission control** ([`queue`]) — a bounded MPMC queue in front of
//!   the worker pool; a full queue sheds the request with an immediate
//!   `Overloaded` response, so backlog (and therefore admitted-request
//!   queueing delay) is capped by construction;
//! * **per-request deadlines** — a relative deadline in the request header
//!   answered with `DeadlineExceeded` when it expires in the queue;
//! * an **update-batching stage** ([`server`]) — dynamic-structure writes
//!   are coalesced and applied per target with one lock hold per batch,
//!   the service-layer analogue of the paper's §5 buffered updates;
//! * a **structure-agnostic router** ([`target`]) — structures register as
//!   [`QueryTarget`] trait objects, so new external structures join the
//!   server without touching it;
//! * **snapshot reads with time travel** ([`server`] over
//!   `pc_pagestore::version`) — each applied batch installs an immutable
//!   epoch; queries pin a snapshot at admission and answer lock-free from
//!   frozen per-epoch views, so reads never block on updates, and the
//!   wire's `as_of` header addresses any retained historical epoch;
//! * **graceful drain-then-shutdown** and idle-timeout reclamation of dead
//!   connections, plus always-on service stats ([`stats`]) exposed over
//!   the ADMIN ops;
//! * a **shard fabric** ([`router`]) — keyspace sharding by split points,
//!   a scatter-gather router over replica groups with failover, seeded
//!   retry backoff and journal-replay catch-up, and a thin wire front-end
//!   so clients talk to a cluster exactly as they would to one node.
//!
//! Everything is `std` + workspace crates only (the hermetic-build rule);
//! the companion binary `pc-loadgen` drives this server over real sockets
//! and records throughput/latency artifacts.
//!
//! [`Page`]: pc_pagestore::Page
//! [`QueryTarget`]: target::QueryTarget

#![forbid(unsafe_code)]

pub mod client;
pub mod obsplane;
pub mod queue;
pub mod router;
pub mod server;
pub mod stats;
pub mod target;
pub mod wire;

pub use client::{Client, ClientError, RetryClient, RetryPolicy};
pub use obsplane::{GroupCommitObserver, TargetStats, TargetStatsSet};
pub use router::{
    canonicalize, FrontendConfig, FrontendHandle, Router, RouterConfig, RouterError,
    RouterFrontend, ShardMap, ShardStats,
};
pub use server::{
    decode_commit_meta, encode_commit_meta, Server, ServerConfig, ServerHandle, Service,
};
pub use stats::ServeStats;
pub use target::{
    BTreeTarget, DynamicPstTarget, DynamicThreeSidedTarget, FrozenView, IntervalTreeTarget,
    NaivePstTarget, PstTarget, QueryTarget, Registry, SegTreeTarget, TargetError,
    ThreeSidedTarget, UpdateOp,
};
pub use wire::{
    Body, DecodeError, ErrorCode, Op, Request, Response, SlowEntry, WireSpan, FLAG_TRACE,
    RANKED_BY_LATENCY, RANKED_BY_WASTE,
};
