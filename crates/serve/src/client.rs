//! A small blocking client for the wire protocol, used by `pc-loadgen`,
//! the tests, and the examples.
//!
//! Every socket operation carries a timeout: a peer that disappears
//! mid-stream surfaces as a [`ClientError::Io`] timeout (or
//! [`ClientError::Closed`] on EOF), never a hang — callers like
//! `pc-loadgen` turn that into a nonzero exit.

use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use pc_pagestore::Point;

use crate::wire::{
    decode_response, read_frame, request_frame, write_frame, Op, Request, Response, MAX_FRAME,
};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (includes read/write timeouts — a dead peer).
    Io(io::Error),
    /// The server sent bytes that do not decode as a response.
    Decode(crate::wire::DecodeError),
    /// The peer closed the connection at a frame boundary.
    Closed,
    /// A response id did not match the in-flight request id.
    IdMismatch {
        /// Id we sent.
        sent: u64,
        /// Id that came back.
        got: u64,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Decode(e) => write!(f, "protocol error: {e}"),
            ClientError::Closed => write!(f, "server closed the connection"),
            ClientError::IdMismatch { sent, got } => {
                write!(f, "response id {got} does not match request id {sent}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<crate::wire::DecodeError> for ClientError {
    fn from(e: crate::wire::DecodeError) -> ClientError {
        ClientError::Decode(e)
    }
}

/// A blocking connection to a `pc-serve` server.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
    max_frame: usize,
}

impl Client {
    /// Connects with `timeout` applied to the connect itself and as the
    /// initial read/write timeout.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> io::Result<Client> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(Client { stream, next_id: 0, max_frame: MAX_FRAME })
    }

    /// Overrides the socket read/write timeout (`None` blocks forever —
    /// only sensible in tests).
    pub fn set_io_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)
    }

    /// Sends a request without waiting for the response (open-loop /
    /// pipelined use); returns the request id.
    pub fn send(&mut self, target: u16, deadline_ms: u32, op: Op) -> Result<u64, ClientError> {
        self.send_flags(target, deadline_ms, 0, op)
    }

    /// Like [`Client::send`] with explicit per-request flag bits (e.g.
    /// [`crate::wire::FLAG_TRACE`] to force a trace of this request).
    pub fn send_flags(
        &mut self,
        target: u16,
        deadline_ms: u32,
        flags: u8,
        op: Op,
    ) -> Result<u64, ClientError> {
        self.next_id += 1;
        let id = self.next_id;
        let frame = request_frame(&Request { id, target, deadline_ms, flags, op });
        write_frame(&mut &self.stream, &frame)?;
        Ok(id)
    }

    /// Receives the next response regardless of id (pipelined use).
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        let payload = read_frame(&mut &self.stream, self.max_frame)?.ok_or(ClientError::Closed)?;
        Ok(decode_response(&payload)?)
    }

    /// One request, one response (closed-loop use); checks the echoed id.
    pub fn call(&mut self, target: u16, deadline_ms: u32, op: Op) -> Result<Response, ClientError> {
        self.call_flags(target, deadline_ms, 0, op)
    }

    /// Like [`Client::call`] with explicit per-request flag bits.
    pub fn call_flags(
        &mut self,
        target: u16,
        deadline_ms: u32,
        flags: u8,
        op: Op,
    ) -> Result<Response, ClientError> {
        let sent = self.send_flags(target, deadline_ms, flags, op)?;
        let resp = self.recv()?;
        if resp.id != sent {
            return Err(ClientError::IdMismatch { sent, got: resp.id });
        }
        Ok(resp)
    }

    /// Admin liveness probe.
    pub fn ping(&mut self) -> Result<Response, ClientError> {
        self.call(0, 0, Op::Ping)
    }

    /// Admin stats: server + store counters.
    pub fn stats(&mut self) -> Result<Response, ClientError> {
        self.call(0, 0, Op::Stats)
    }

    /// Admin metrics: Prometheus-style text.
    pub fn metrics(&mut self) -> Result<Response, ClientError> {
        self.call(0, 0, Op::Metrics)
    }

    /// Admin graceful shutdown.
    pub fn shutdown_server(&mut self) -> Result<Response, ClientError> {
        self.call(0, 0, Op::Shutdown)
    }

    /// Admin slow-query log: top `k` entries per ranking, optionally
    /// draining the log.
    pub fn slow_log(&mut self, k: u32, clear: bool) -> Result<Response, ClientError> {
        self.call(0, 0, Op::SlowLog { k, clear })
    }

    /// Admin: retune live trace sampling to 1-in-`every` (0 = off).
    pub fn set_sampling(&mut self, every: u64) -> Result<Response, ClientError> {
        self.call(0, 0, Op::SetSampling { every })
    }

    /// Convenience: insert a point into a dynamic target.
    pub fn insert(&mut self, target: u16, p: Point) -> Result<Response, ClientError> {
        self.call(target, 0, Op::Insert(p))
    }

    /// Convenience: delete a point from a dynamic target.
    pub fn delete(&mut self, target: u16, p: Point) -> Result<Response, ClientError> {
        self.call(target, 0, Op::Delete(p))
    }
}
