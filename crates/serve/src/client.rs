//! A small blocking client for the wire protocol, used by `pc-loadgen`,
//! the tests, and the examples.
//!
//! Every socket operation carries a timeout: a peer that disappears
//! mid-stream surfaces as a [`ClientError::Io`] timeout (or
//! [`ClientError::Closed`] on EOF), never a hang — callers like
//! `pc-loadgen` turn that into a nonzero exit.

use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use pc_pagestore::Point;
use pc_rng::Rng;

use crate::wire::{
    decode_response, read_frame, request_frame, write_frame, Op, Request, Response, MAX_FRAME,
};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (includes read/write timeouts — a dead peer).
    Io(io::Error),
    /// The server sent bytes that do not decode as a response.
    Decode(crate::wire::DecodeError),
    /// The peer closed the connection at a frame boundary.
    Closed,
    /// A response id did not match the in-flight request id.
    IdMismatch {
        /// Id we sent.
        sent: u64,
        /// Id that came back.
        got: u64,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Decode(e) => write!(f, "protocol error: {e}"),
            ClientError::Closed => write!(f, "server closed the connection"),
            ClientError::IdMismatch { sent, got } => {
                write!(f, "response id {got} does not match request id {sent}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<crate::wire::DecodeError> for ClientError {
    fn from(e: crate::wire::DecodeError) -> ClientError {
        ClientError::Decode(e)
    }
}

/// A blocking connection to a `pc-serve` server.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
    max_frame: usize,
}

impl Client {
    /// Connects with `timeout` applied to the connect itself and as the
    /// initial read/write timeout.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> io::Result<Client> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(Client { stream, next_id: 0, max_frame: MAX_FRAME })
    }

    /// Overrides the socket read/write timeout (`None` blocks forever —
    /// only sensible in tests).
    pub fn set_io_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)
    }

    /// Sends a request without waiting for the response (open-loop /
    /// pipelined use); returns the request id.
    pub fn send(&mut self, target: u16, deadline_ms: u32, op: Op) -> Result<u64, ClientError> {
        self.send_flags(target, deadline_ms, 0, op)
    }

    /// Like [`Client::send`] with explicit per-request flag bits (e.g.
    /// [`crate::wire::FLAG_TRACE`] to force a trace of this request).
    pub fn send_flags(
        &mut self,
        target: u16,
        deadline_ms: u32,
        flags: u8,
        op: Op,
    ) -> Result<u64, ClientError> {
        self.send_with(target, deadline_ms, flags, 0, op)
    }

    /// Fully general send: explicit flags *and* snapshot selector.
    /// `as_of` 0 means "the latest epoch at admission"; any other value
    /// addresses that installed epoch (time travel), and updates must
    /// carry 0.
    pub fn send_with(
        &mut self,
        target: u16,
        deadline_ms: u32,
        flags: u8,
        as_of: u64,
        op: Op,
    ) -> Result<u64, ClientError> {
        self.next_id += 1;
        let id = self.next_id;
        let frame = request_frame(&Request { id, target, deadline_ms, flags, as_of, op });
        write_frame(&mut &self.stream, &frame)?;
        Ok(id)
    }

    /// Receives the next response regardless of id (pipelined use).
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        let payload = read_frame(&mut &self.stream, self.max_frame)?.ok_or(ClientError::Closed)?;
        Ok(decode_response(&payload)?)
    }

    /// One request, one response (closed-loop use); checks the echoed id.
    pub fn call(&mut self, target: u16, deadline_ms: u32, op: Op) -> Result<Response, ClientError> {
        self.call_flags(target, deadline_ms, 0, op)
    }

    /// Like [`Client::call`] with explicit per-request flag bits.
    pub fn call_flags(
        &mut self,
        target: u16,
        deadline_ms: u32,
        flags: u8,
        op: Op,
    ) -> Result<Response, ClientError> {
        let sent = self.send_flags(target, deadline_ms, flags, op)?;
        let resp = self.recv()?;
        if resp.id != sent {
            return Err(ClientError::IdMismatch { sent, got: resp.id });
        }
        Ok(resp)
    }

    /// Closed-loop query against a pinned historical epoch: `as_of` names
    /// the installed epoch sequence to read (see [`Client::send_with`]).
    pub fn call_as_of(
        &mut self,
        target: u16,
        deadline_ms: u32,
        as_of: u64,
        op: Op,
    ) -> Result<Response, ClientError> {
        let sent = self.send_with(target, deadline_ms, 0, as_of, op)?;
        let resp = self.recv()?;
        if resp.id != sent {
            return Err(ClientError::IdMismatch { sent, got: resp.id });
        }
        Ok(resp)
    }

    /// Admin liveness probe.
    pub fn ping(&mut self) -> Result<Response, ClientError> {
        self.call(0, 0, Op::Ping)
    }

    /// Admin stats: server + store counters.
    pub fn stats(&mut self) -> Result<Response, ClientError> {
        self.call(0, 0, Op::Stats)
    }

    /// Admin metrics: Prometheus-style text.
    pub fn metrics(&mut self) -> Result<Response, ClientError> {
        self.call(0, 0, Op::Metrics)
    }

    /// Admin graceful shutdown.
    pub fn shutdown_server(&mut self) -> Result<Response, ClientError> {
        self.call(0, 0, Op::Shutdown)
    }

    /// Admin slow-query log: top `k` entries per ranking, optionally
    /// draining the log.
    pub fn slow_log(&mut self, k: u32, clear: bool) -> Result<Response, ClientError> {
        self.call(0, 0, Op::SlowLog { k, clear })
    }

    /// Admin: retune live trace sampling to 1-in-`every` (0 = off).
    pub fn set_sampling(&mut self, every: u64) -> Result<Response, ClientError> {
        self.call(0, 0, Op::SetSampling { every })
    }

    /// Admin: the server's retained snapshot window (current/oldest epoch,
    /// install + reclaim counters, live pins).
    pub fn versions(&mut self) -> Result<Response, ClientError> {
        self.call(0, 0, Op::Versions)
    }

    /// Convenience: insert a point into a dynamic target.
    pub fn insert(&mut self, target: u16, p: Point) -> Result<Response, ClientError> {
        self.call(target, 0, Op::Insert(p))
    }

    /// Convenience: delete a point from a dynamic target.
    pub fn delete(&mut self, target: u16, p: Point) -> Result<Response, ClientError> {
        self.call(target, 0, Op::Delete(p))
    }
}

/// Retry tuning for [`RetryClient`] (and the router's per-replica
/// failover): capped exponential backoff with full jitter. Attempt `k`
/// sleeps a uniformly random duration in `[0, min(cap, base * 2^k)]` —
/// the jitter is drawn from a seeded [`pc_rng::Rng`], so a test's retry
/// schedule is exactly reproducible.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// First-retry backoff ceiling.
    pub base: Duration,
    /// Upper bound the exponential is capped at.
    pub cap: Duration,
    /// Total attempts (the first try included). 1 = no retries.
    pub attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            base: Duration::from_millis(20),
            cap: Duration::from_millis(500),
            attempts: 4,
        }
    }
}

impl RetryPolicy {
    /// The jittered sleep before retry number `attempt` (1-based: the
    /// sleep between the first failure and the second try is `delay(1)`).
    pub fn delay(&self, attempt: u32, rng: &mut Rng) -> Duration {
        let exp = self.base.saturating_mul(1u32 << attempt.min(16).saturating_sub(1));
        let ceil = exp.min(self.cap).as_nanos() as u64;
        Duration::from_nanos(if ceil == 0 { 0 } else { rng.gen_range(0..=ceil) })
    }

    /// True when a transport error on try `attempt` (1-based) should be
    /// retried under this policy.
    pub fn should_retry(&self, attempt: u32) -> bool {
        attempt < self.attempts
    }
}

/// A [`Client`] that survives a dropped socket: transport errors on
/// **idempotent** operations (queries and admin reads — never
/// `Insert`/`Delete`, which could double-apply) are retried under a
/// [`RetryPolicy`], reconnecting to the same address between attempts.
///
/// Usable standalone (a loadgen or an operator tool that should ride out
/// a server restart); the router builds its per-replica failover on the
/// same policy.
pub struct RetryClient {
    addr: SocketAddr,
    timeout: Duration,
    policy: RetryPolicy,
    rng: Rng,
    inner: Option<Client>,
}

impl RetryClient {
    /// Connects eagerly; the policy covers the initial connect too.
    pub fn connect(
        addr: SocketAddr,
        timeout: Duration,
        policy: RetryPolicy,
        seed: u64,
    ) -> Result<RetryClient, ClientError> {
        let mut c = RetryClient { addr, timeout, policy, rng: Rng::seed_from_u64(seed), inner: None };
        c.ensure_connected()?;
        Ok(c)
    }

    /// The address every (re)connect targets.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// True when a live connection is currently held.
    pub fn is_connected(&self) -> bool {
        self.inner.is_some()
    }

    /// Drops the current connection (the next call reconnects). Used by
    /// callers that detect staleness out of band.
    pub fn disconnect(&mut self) {
        self.inner = None;
    }

    fn ensure_connected(&mut self) -> Result<&mut Client, ClientError> {
        if self.inner.is_none() {
            let mut attempt = 1u32;
            loop {
                match Client::connect(self.addr, self.timeout) {
                    Ok(c) => {
                        self.inner = Some(c);
                        break;
                    }
                    Err(_) if self.policy.should_retry(attempt) => {
                        std::thread::sleep(self.policy.delay(attempt, &mut self.rng));
                        attempt += 1;
                    }
                    Err(e) => return Err(ClientError::Io(e)),
                }
            }
        }
        Ok(self.inner.as_mut().expect("just connected"))
    }

    /// One idempotent request, retried across reconnects. Callers must not
    /// pass `Insert`/`Delete` (debug-asserted): a connection that dies
    /// after the send leaves the update's fate unknown, and a blind retry
    /// could apply it twice.
    pub fn call_idempotent(
        &mut self,
        target: u16,
        deadline_ms: u32,
        op: Op,
    ) -> Result<Response, ClientError> {
        debug_assert!(!op.is_update(), "call_idempotent must not carry updates");
        let mut attempt = 1u32;
        loop {
            let r = self.ensure_connected().and_then(|c| c.call(target, deadline_ms, op.clone()));
            match r {
                Ok(resp) => return Ok(resp),
                Err(e @ (ClientError::Io(_) | ClientError::Closed)) => {
                    // Transport failure: the socket is dead either way.
                    self.inner = None;
                    if !self.policy.should_retry(attempt) {
                        return Err(e);
                    }
                    std::thread::sleep(self.policy.delay(attempt, &mut self.rng));
                    attempt += 1;
                }
                // Protocol-level surprises are not transient; surface them.
                Err(e) => return Err(e),
            }
        }
    }
}
