//! The [`QueryTarget`] registry: the router's only view of a data
//! structure.
//!
//! The server never matches on concrete structure types. Each served
//! structure is registered as a boxed [`QueryTarget`] and addressed by its
//! registry index ([`Request::target`]); the trait maps a wire [`Op`] to a
//! wire [`Body`] (or a typed [`TargetError`]), so adding a new external
//! structure to the server is one `impl` plus one `register` call — no
//! router changes. Update-capable targets additionally accept a *slice* of
//! updates: the batching stage hands over everything it coalesced so the
//! target pays its lock acquisition and root-path traffic once per batch,
//! not once per update (the Thm 5.1 buffering idea applied at the service
//! boundary).
//!
//! All registered structures share one [`PageStore`] (`&self` API, `Sync`),
//! so worker threads query concurrently through the sharded buffer pool.

use std::fmt;

use pc_btree::BTree;
use pc_intervaltree::ExternalIntervalTree;
use pc_pagestore::{PageStore, Point, StoreError};
use pc_pst::{
    DynamicPst, DynamicThreeSidedPst, NaivePst, ThreeSided, ThreeSidedPst, TwoLevelPst, TwoSided,
};
use pc_segtree::CachedSegmentTree;
use pc_sync::Mutex;

use crate::wire::{Body, Op};

/// Why a target could not serve an op.
#[derive(Debug)]
pub enum TargetError {
    /// This target does not implement the op (e.g. a stab against a B-tree).
    Unsupported {
        /// The op name (see [`Op::name`]).
        op: &'static str,
        /// The target kind (see [`QueryTarget::kind`]).
        target: &'static str,
    },
    /// The storage layer failed; carries the typed store error.
    Storage(StoreError),
}

impl fmt::Display for TargetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TargetError::Unsupported { op, target } => {
                write!(f, "op {op} is not supported by target kind {target}")
            }
            TargetError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for TargetError {}

impl From<StoreError> for TargetError {
    fn from(e: StoreError) -> TargetError {
        TargetError::Storage(e)
    }
}

/// One update taken from the wire, as handed to [`QueryTarget::apply_updates`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateOp {
    /// Insert a point.
    Insert(Point),
    /// Delete a point.
    Delete(Point),
}

/// A servable structure. Implementations must be `Send + Sync`: queries run
/// concurrently from the worker pool against a shared [`PageStore`].
pub trait QueryTarget: Send + Sync {
    /// Stable kind name for stats and error messages (e.g. `"btree"`).
    fn kind(&self) -> &'static str;

    /// Serves one read op. Admin ops are never routed here.
    fn query(&self, store: &PageStore, op: &Op) -> Result<Body, TargetError>;

    /// Whether [`QueryTarget::apply_updates`] can succeed; the router
    /// rejects updates to static targets before they reach a queue.
    fn supports_updates(&self) -> bool {
        false
    }

    /// Applies a coalesced batch of updates, returning one result per op in
    /// order. The default rejects everything (static structure).
    fn apply_updates(&self, store: &PageStore, ops: &[UpdateOp]) -> Vec<Result<(), TargetError>> {
        let _ = store;
        ops.iter()
            .map(|_| Err(TargetError::Unsupported { op: "update", target: self.kind() }))
            .collect()
    }

    /// Serialized reopen handle for this target's current state, if the
    /// structure supports one (e.g. [`pc_pst::DynamicPst::descriptor`]).
    /// On a durable store the batcher commits these with every group, so
    /// after a crash the recovered store's `last_commit_meta` carries
    /// exactly the handles matching the acknowledged state — see
    /// [`crate::server::decode_commit_meta`].
    fn descriptor(&self) -> Option<Vec<u8>> {
        None
    }

    /// True when this target's updates run inside the versioning layer's
    /// copy-on-write apply session, which requires a reopen handle: an
    /// epoch snapshot answers queries from a [`QueryTarget::open_frozen`]
    /// view built from the descriptor committed with that epoch. Targets
    /// without a descriptor (e.g. the dynamic 3-sided PST) update the
    /// live pages directly and are not time-travelable.
    fn versioned_updates(&self) -> bool {
        self.descriptor().is_some()
    }

    /// Reopens a read-only view of this target's state as captured by a
    /// committed descriptor (see [`QueryTarget::descriptor`]). Callers
    /// resolve page reads through a pinned epoch, so the view is immutable
    /// and safely shared across query workers without locks. The default
    /// refuses (no descriptor, nothing to reopen).
    fn open_frozen(
        &self,
        store: &PageStore,
        desc: &[u8],
    ) -> Result<Box<dyn QueryTarget>, TargetError> {
        let _ = (store, desc);
        Err(TargetError::Unsupported { op: "open_frozen", target: self.kind() })
    }
}

/// A frozen per-epoch view, wrapped in a concrete type so snapshots can
/// cache it as `Arc<FrozenView>` inside their `Any`-keyed epoch cache
/// (an `Arc<dyn QueryTarget>` itself cannot live in an `Arc<dyn Any>`).
pub struct FrozenView(pub Box<dyn QueryTarget>);

impl FrozenView {
    /// Serves a read op against the frozen state.
    pub fn query(&self, store: &PageStore, op: &Op) -> Result<Body, TargetError> {
        self.0.query(store, op)
    }
}

fn unsupported(op: &Op, target: &'static str) -> TargetError {
    TargetError::Unsupported { op: op.name(), target }
}

/// A read-only B-tree serving [`Op::Range1d`].
pub struct BTreeTarget(pub BTree<i64, u64>);

impl QueryTarget for BTreeTarget {
    fn kind(&self) -> &'static str {
        "btree"
    }

    fn query(&self, store: &PageStore, op: &Op) -> Result<Body, TargetError> {
        match op {
            Op::Range1d { lo, hi } => Ok(Body::Keys(self.0.range(store, lo, hi)?)),
            other => Err(unsupported(other, self.kind())),
        }
    }
}

/// A path-cached segment tree serving [`Op::Stab`].
pub struct SegTreeTarget(pub CachedSegmentTree);

impl QueryTarget for SegTreeTarget {
    fn kind(&self) -> &'static str {
        "segtree"
    }

    fn query(&self, store: &PageStore, op: &Op) -> Result<Body, TargetError> {
        match op {
            Op::Stab { q } => Ok(Body::Intervals(self.0.stab(store, *q)?)),
            other => Err(unsupported(other, self.kind())),
        }
    }
}

/// An external interval tree serving [`Op::Stab`].
pub struct IntervalTreeTarget(pub ExternalIntervalTree);

impl QueryTarget for IntervalTreeTarget {
    fn kind(&self) -> &'static str {
        "intervaltree"
    }

    fn query(&self, store: &PageStore, op: &Op) -> Result<Body, TargetError> {
        match op {
            Op::Stab { q } => Ok(Body::Intervals(self.0.stab(store, *q)?)),
            other => Err(unsupported(other, self.kind())),
        }
    }
}

/// A static two-level PST serving [`Op::TwoSided`].
pub struct PstTarget(pub TwoLevelPst);

impl QueryTarget for PstTarget {
    fn kind(&self) -> &'static str {
        "pst"
    }

    fn query(&self, store: &PageStore, op: &Op) -> Result<Body, TargetError> {
        match op {
            Op::TwoSided { x0, y0 } => {
                Ok(Body::Points(self.0.query(store, TwoSided { x0: *x0, y0: *y0 })?))
            }
            other => Err(unsupported(other, self.kind())),
        }
    }
}

/// The paper's baseline: a naive externalized PST serving [`Op::TwoSided`]
/// *without* path caching. It exists in the registry for live A/B
/// comparison — its deep-corner queries are the Figure-3 pathology the
/// slow-query log's wasteful-I/O ranking is built to catch.
pub struct NaivePstTarget(pub NaivePst);

impl QueryTarget for NaivePstTarget {
    fn kind(&self) -> &'static str {
        "naive_pst"
    }

    fn query(&self, store: &PageStore, op: &Op) -> Result<Body, TargetError> {
        match op {
            Op::TwoSided { x0, y0 } => {
                Ok(Body::Points(self.0.query(store, TwoSided { x0: *x0, y0: *y0 })?))
            }
            other => Err(unsupported(other, self.kind())),
        }
    }
}

/// A static 3-sided PST serving [`Op::ThreeSided`].
pub struct ThreeSidedTarget(pub ThreeSidedPst);

impl QueryTarget for ThreeSidedTarget {
    fn kind(&self) -> &'static str {
        "pst3"
    }

    fn query(&self, store: &PageStore, op: &Op) -> Result<Body, TargetError> {
        match op {
            Op::ThreeSided { x1, x2, y0 } => Ok(Body::Points(self.0.query(
                store,
                ThreeSided { x1: *x1, x2: *x2, y0: *y0 },
            )?)),
            other => Err(unsupported(other, self.kind())),
        }
    }
}

/// A dynamic PST serving [`Op::TwoSided`] plus batched inserts/deletes.
/// The mutex is held once per *batch*, which is exactly the coalescing win:
/// queries interleave between batches, not between individual updates.
pub struct DynamicPstTarget(pub Mutex<DynamicPst>);

impl DynamicPstTarget {
    /// Wraps an already-built dynamic PST.
    pub fn new(pst: DynamicPst) -> DynamicPstTarget {
        DynamicPstTarget(Mutex::new(pst))
    }

    /// Reopens from a committed [`DynamicPst::descriptor`] (crash
    /// recovery: the handle comes out of the recovered store's
    /// `last_commit_meta`).
    pub fn open(store: &PageStore, desc: &[u8]) -> Result<DynamicPstTarget, TargetError> {
        Ok(DynamicPstTarget::new(DynamicPst::open(store, desc)?))
    }
}

impl QueryTarget for DynamicPstTarget {
    fn kind(&self) -> &'static str {
        "dynamic_pst"
    }

    fn query(&self, store: &PageStore, op: &Op) -> Result<Body, TargetError> {
        match op {
            Op::TwoSided { x0, y0 } => {
                Ok(Body::Points(self.0.lock().query(store, TwoSided { x0: *x0, y0: *y0 })?))
            }
            other => Err(unsupported(other, self.kind())),
        }
    }

    fn supports_updates(&self) -> bool {
        true
    }

    fn apply_updates(&self, store: &PageStore, ops: &[UpdateOp]) -> Vec<Result<(), TargetError>> {
        let mut pst = self.0.lock();
        ops.iter()
            .map(|op| {
                match op {
                    UpdateOp::Insert(p) => pst.insert(store, *p),
                    UpdateOp::Delete(p) => pst.delete(store, *p),
                }
                .map_err(TargetError::from)
            })
            .collect()
    }

    fn descriptor(&self) -> Option<Vec<u8>> {
        Some(self.0.lock().descriptor().to_vec())
    }

    fn open_frozen(
        &self,
        store: &PageStore,
        desc: &[u8],
    ) -> Result<Box<dyn QueryTarget>, TargetError> {
        Ok(Box::new(FrozenDynamicPst(DynamicPst::open(store, desc)?)))
    }
}

/// Read-only reopen of a [`DynamicPst`] at a committed descriptor.
/// `DynamicPst::query` is `&self`, so no mutex is needed: the state is
/// immutable by construction (page reads resolve through the pinned
/// epoch that produced the descriptor).
struct FrozenDynamicPst(DynamicPst);

impl QueryTarget for FrozenDynamicPst {
    fn kind(&self) -> &'static str {
        "dynamic_pst@epoch"
    }

    fn query(&self, store: &PageStore, op: &Op) -> Result<Body, TargetError> {
        match op {
            Op::TwoSided { x0, y0 } => {
                Ok(Body::Points(self.0.query(store, TwoSided { x0: *x0, y0: *y0 })?))
            }
            other => Err(unsupported(other, self.kind())),
        }
    }
}

/// A dynamic 3-sided PST serving [`Op::ThreeSided`] plus batched updates.
pub struct DynamicThreeSidedTarget(pub Mutex<DynamicThreeSidedPst>);

impl DynamicThreeSidedTarget {
    /// Wraps an already-built dynamic 3-sided PST.
    pub fn new(pst: DynamicThreeSidedPst) -> DynamicThreeSidedTarget {
        DynamicThreeSidedTarget(Mutex::new(pst))
    }
}

impl QueryTarget for DynamicThreeSidedTarget {
    fn kind(&self) -> &'static str {
        "dynamic_pst3"
    }

    fn query(&self, store: &PageStore, op: &Op) -> Result<Body, TargetError> {
        match op {
            Op::ThreeSided { x1, x2, y0 } => Ok(Body::Points(self.0.lock().query(
                store,
                ThreeSided { x1: *x1, x2: *x2, y0: *y0 },
            )?)),
            other => Err(unsupported(other, self.kind())),
        }
    }

    fn supports_updates(&self) -> bool {
        true
    }

    fn apply_updates(&self, store: &PageStore, ops: &[UpdateOp]) -> Vec<Result<(), TargetError>> {
        let mut pst = self.0.lock();
        ops.iter()
            .map(|op| {
                match op {
                    UpdateOp::Insert(p) => pst.insert(store, *p),
                    UpdateOp::Delete(p) => pst.delete(store, *p),
                }
                .map_err(TargetError::from)
            })
            .collect()
    }
}

/// The set of structures a server instance exposes, addressed by index.
#[derive(Default)]
pub struct Registry {
    targets: Vec<(String, Box<dyn QueryTarget>)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers a target under `name`, returning its wire id.
    pub fn register(&mut self, name: impl Into<String>, target: Box<dyn QueryTarget>) -> u16 {
        assert!(self.targets.len() < u16::MAX as usize, "registry full");
        self.targets.push((name.into(), target));
        (self.targets.len() - 1) as u16
    }

    /// Looks up a target by wire id.
    pub fn get(&self, id: u16) -> Option<&dyn QueryTarget> {
        self.targets.get(id as usize).map(|(_, t)| t.as_ref())
    }

    /// The name a target was registered under.
    pub fn name(&self, id: u16) -> Option<&str> {
        self.targets.get(id as usize).map(|(n, _)| n.as_str())
    }

    /// Number of registered targets.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// `(id, name, kind, supports_updates)` for every target, for stats.
    pub fn describe(&self) -> Vec<(u16, &str, &'static str, bool)> {
        self.targets
            .iter()
            .enumerate()
            .map(|(i, (n, t))| (i as u16, n.as_str(), t.kind(), t.supports_updates()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_pagestore::Interval;

    const PAGE: usize = 512;

    #[test]
    fn registry_routes_by_id_and_rejects_mismatched_ops() {
        let store = PageStore::in_memory(PAGE);
        let points: Vec<Point> =
            (0..50).map(|i| Point { x: i, y: (i * 7) % 50, id: i as u64 }).collect();
        let entries: Vec<(i64, u64)> = (0..50).map(|i| (i, (i * i) as u64)).collect();
        let intervals: Vec<Interval> =
            (0..20).map(|i| Interval { lo: i, hi: i + 10, id: i as u64 }).collect();

        let mut reg = Registry::new();
        let bt = reg.register("keys", Box::new(BTreeTarget(BTree::bulk_build(&store, &entries).unwrap())));
        let st = reg.register("intervals", Box::new(SegTreeTarget(CachedSegmentTree::build(&store, &intervals).unwrap())));
        let it = reg.register("intervals2", Box::new(IntervalTreeTarget(ExternalIntervalTree::build(&store, &intervals).unwrap())));
        let ps = reg.register("points", Box::new(PstTarget(TwoLevelPst::build(&store, &points).unwrap())));
        let dy = reg.register("dynamic", Box::new(DynamicPstTarget::new(DynamicPst::build(&store, &points).unwrap())));
        assert_eq!(reg.len(), 5);
        assert_eq!(reg.name(bt), Some("keys"));
        assert!(reg.get(99).is_none());

        // Right op, right answer shape.
        let body = reg.get(bt).unwrap().query(&store, &Op::Range1d { lo: 10, hi: 20 }).unwrap();
        match body {
            Body::Keys(kvs) => assert_eq!(kvs.len(), 11),
            other => panic!("unexpected body {other:?}"),
        }
        for id in [st, it] {
            let body = reg.get(id).unwrap().query(&store, &Op::Stab { q: 15 }).unwrap();
            assert!(matches!(body, Body::Intervals(_)));
        }
        for id in [ps, dy] {
            let body =
                reg.get(id).unwrap().query(&store, &Op::TwoSided { x0: 10, y0: 10 }).unwrap();
            assert!(matches!(body, Body::Points(_)));
        }

        // Wrong op for the target: typed Unsupported, not a panic.
        let err = reg.get(bt).unwrap().query(&store, &Op::Stab { q: 1 }).unwrap_err();
        assert!(matches!(err, TargetError::Unsupported { .. }));
        assert!(err.to_string().contains("btree"));

        // Static targets refuse updates; the dynamic one advertises them.
        assert!(!reg.get(bt).unwrap().supports_updates());
        assert!(reg.get(dy).unwrap().supports_updates());
        let res = reg
            .get(bt)
            .unwrap()
            .apply_updates(&store, &[UpdateOp::Insert(Point { x: 0, y: 0, id: 0 })]);
        assert!(matches!(res[0], Err(TargetError::Unsupported { .. })));
    }

    #[test]
    fn dynamic_target_batch_updates_agree_with_queries() {
        let store = PageStore::in_memory(PAGE);
        let target = DynamicPstTarget::new(DynamicPst::build(&store, &[]).unwrap());
        let ops: Vec<UpdateOp> =
            (0..40).map(|i| UpdateOp::Insert(Point { x: i, y: i % 10, id: i as u64 })).collect();
        let results = target.apply_updates(&store, &ops);
        assert!(results.iter().all(|r| r.is_ok()));
        let deletes: Vec<UpdateOp> =
            (0..10).map(|i| UpdateOp::Delete(Point { x: i, y: i % 10, id: i as u64 })).collect();
        assert!(target.apply_updates(&store, &deletes).iter().all(|r| r.is_ok()));
        let body = target.query(&store, &Op::TwoSided { x0: 0, y0: 0 }).unwrap();
        match body {
            Body::Points(ps) => assert_eq!(ps.len(), 30),
            other => panic!("unexpected body {other:?}"),
        }
    }
}
