//! # path-caching — optimal external 2-d searching
//!
//! A Rust implementation of **"Path Caching: A Technique for Optimal
//! External Searching"** (Ramaswamy & Subramanian, PODS 1994): external-
//! memory data structures for the special cases of 2-dimensional range
//! searching that underpin relational, temporal, constraint, and object-
//! oriented databases, with worst-case optimal query I/O
//! `O(log_B n + t/B)`.
//!
//! ## What's here
//!
//! * [`PointIndex`] — static 2-sided (dominance) queries over points, with
//!   a choice of the paper's space/time trade-offs ([`Variant`]) and any
//!   corner orientation ([`Quadrant`]).
//! * [`ThreeSidedIndex`] — static 3-sided queries
//!   (`x ∈ [x1,x2] ∧ y ≥ y0`), Theorem 3.3.
//! * [`DynamicPointIndex`] — fully dynamic 2-sided queries, Theorem 5.1.
//! * [`IntervalStore`] — dynamic interval management (stabbing queries)
//!   via the [KRV] reduction to diagonal-corner/2-sided queries; the
//!   paper's §1 headline application for temporal and constraint
//!   databases.
//! * [`ClassIndex`] — indexing class hierarchies (the paper's §1
//!   object-oriented-database application): "objects in the subtree of
//!   class `c` with attribute at least `v`" as one 3-sided query.
//! * Re-exports of the substrate crates: the paged store
//!   ([`store`]), external B+-tree ([`btree`]), external segment trees
//!   ([`segtree`]), and the external interval tree ([`intervaltree`]).
//!
//! ## Quick start
//!
//! ```
//! use path_caching::{PageStore, Point, PointIndex, TwoSided, Variant};
//!
//! let store = PageStore::in_memory(4096);
//! let points: Vec<Point> =
//!     (0..10_000).map(|i| Point::new(i, (i * 37) % 10_000, i as u64)).collect();
//! let index = PointIndex::build(&store, &points, Variant::TwoLevel).unwrap();
//! let hits = index.query(&store, TwoSided { x0: 9_000, y0: 9_000 }).unwrap();
//! assert!(hits.iter().all(|p| p.x >= 9_000 && p.y >= 9_000));
//! ```

mod class_index;
mod interval_store;
mod point_index;

pub use class_index::{ClassId, ClassIndex, ClassIndexBuilder};
pub use interval_store::IntervalStore;
pub use point_index::{DiagonalCorner, DynamicPointIndex, PointIndex, Quadrant, ThreeSidedIndex, Variant};

pub use pc_pagestore::{Interval, IoStats, PageStore, Point, Record, Result, StoreError};
pub use pc_pst::{ThreeSided, TwoSided};

/// The paged secondary-storage engine (substrate).
pub mod store {
    pub use pc_pagestore::*;
}

/// External B+-tree: 1-d baseline and ordered-map substrate.
pub mod btree {
    pub use pc_btree::*;
}

/// External segment trees (naive and path-cached).
pub mod segtree {
    pub use pc_segtree::*;
}

/// External interval tree with path caching.
pub mod intervaltree {
    pub use pc_intervaltree::*;
}

/// External priority search trees (all paper variants).
pub mod pst {
    pub use pc_pst::*;
}
