//! Dynamic interval management — the paper's §1 headline application.
//!
//! [KRV] showed that dynamic interval management (crucial for indexing in
//! temporal and constraint databases) reduces to *stabbing queries*, which
//! in turn reduce to diagonal-corner / 2-sided queries: an interval
//! `[lo, hi]` becomes the point `(lo, hi)` above the main diagonal, and
//! "which intervals contain `q`" becomes the 2-sided query
//! `x <= q && y >= q` — a north-west dominance query whose corner `(q, q)`
//! lies on the diagonal (Figure 1).
//!
//! [`IntervalStore`] runs that reduction over the fully dynamic PST of
//! Theorem 5.1: stabbing queries cost `O(log_B n + t/B)` I/Os and updates
//! `O(log_B n)` amortized — the bounds the paper's §6 highlights (up to
//! its open `O(n/B)`-space question; this store inherits the
//! `O((n/B)·log log B)` space of the 2-sided structure).

use pc_pagestore::{Interval, PageStore, Point, Result};
use pc_pst::{DynamicPst, TwoSided};

/// A dynamic collection of intervals supporting optimal stabbing queries.
///
/// ```
/// use path_caching::{IntervalStore, Interval, PageStore};
///
/// let store = PageStore::in_memory(4096);
/// let mut ivs = IntervalStore::new(&store).unwrap();
/// ivs.insert(&store, Interval::new(10, 20, 1)).unwrap();
/// ivs.insert(&store, Interval::new(15, 30, 2)).unwrap();
/// let hits = ivs.stab(&store, 18).unwrap();
/// assert_eq!(hits.len(), 2);
/// ivs.remove(&store, Interval::new(10, 20, 1)).unwrap();
/// assert_eq!(ivs.stab(&store, 18).unwrap().len(), 1);
/// ```
pub struct IntervalStore {
    // KRV reduction with the x-axis negated so the canonical north-east
    // engine answers the north-west stabbing query.
    pst: DynamicPst,
}

impl IntervalStore {
    /// Creates an empty store.
    pub fn new(store: &PageStore) -> Result<Self> {
        Self::with_intervals(store, &[])
    }

    /// Bulk-builds a store from an initial interval set (ids must stay
    /// unique among live intervals).
    pub fn with_intervals(store: &PageStore, intervals: &[Interval]) -> Result<Self> {
        let points: Vec<Point> = intervals.iter().map(|iv| Self::to_point(*iv)).collect();
        Ok(IntervalStore { pst: DynamicPst::build(store, &points)? })
    }

    fn to_point(iv: Interval) -> Point {
        // (lo, hi) with lo negated: `lo <= q` becomes `-lo >= -q`.
        Point { x: -iv.lo, y: iv.hi, id: iv.id }
    }

    fn from_point(p: Point) -> Interval {
        Interval { lo: -p.x, hi: p.y, id: p.id }
    }

    /// Number of live intervals.
    pub fn len(&self) -> u64 {
        self.pst.len()
    }

    /// True when the store holds no intervals.
    pub fn is_empty(&self) -> bool {
        self.pst.is_empty()
    }

    /// Inserts an interval. Amortized `O(log_B n)` I/Os.
    pub fn insert(&mut self, store: &PageStore, iv: Interval) -> Result<()> {
        self.pst.insert(store, Self::to_point(iv))
    }

    /// Removes an interval (matched by `(lo, hi, id)`). Amortized
    /// `O(log_B n)` I/Os.
    pub fn remove(&mut self, store: &PageStore, iv: Interval) -> Result<()> {
        self.pst.delete(store, Self::to_point(iv))
    }

    /// Stabbing query: every live interval containing `q`, in
    /// `O(log_B n + t/B)` I/Os.
    pub fn stab(&self, store: &PageStore, q: i64) -> Result<Vec<Interval>> {
        let hits = self.pst.query(store, TwoSided { x0: -q, y0: q })?;
        Ok(hits.into_iter().map(Self::from_point).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn xorshift(state: &mut u64, bound: i64) -> i64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        (*state % bound as u64) as i64
    }

    #[test]
    fn stabbing_matches_brute_force_statically() {
        let store = PageStore::in_memory(512);
        let mut s = 0x123u64;
        let intervals: Vec<Interval> = (0..2000)
            .map(|id| {
                let lo = xorshift(&mut s, 50_000);
                Interval::new(lo, lo + xorshift(&mut s, 3000), id)
            })
            .collect();
        let ivs = IntervalStore::with_intervals(&store, &intervals).unwrap();
        for _ in 0..60 {
            let q = xorshift(&mut s, 55_000) - 1000;
            let mut got: Vec<u64> = ivs.stab(&store, q).unwrap().iter().map(|i| i.id).collect();
            got.sort_unstable();
            let mut want: Vec<u64> =
                intervals.iter().filter(|i| i.contains(q)).map(|i| i.id).collect();
            want.sort_unstable();
            assert_eq!(got, want, "q={q}");
        }
    }

    #[test]
    fn dynamic_interval_management() {
        let store = PageStore::in_memory(512);
        let mut ivs = IntervalStore::new(&store).unwrap();
        let mut oracle: HashMap<u64, Interval> = HashMap::new();
        let mut s = 0x456u64;
        let mut next_id = 0u64;
        for step in 0..1500u64 {
            if xorshift(&mut s, 3) < 2 {
                let lo = xorshift(&mut s, 10_000);
                let iv = Interval::new(lo, lo + xorshift(&mut s, 800), next_id);
                next_id += 1;
                ivs.insert(&store, iv).unwrap();
                oracle.insert(iv.id, iv);
            } else {
                let keys: Vec<u64> = oracle.keys().copied().collect();
                if !keys.is_empty() {
                    let k = keys[(xorshift(&mut s, keys.len() as i64)) as usize];
                    let iv = oracle.remove(&k).unwrap();
                    ivs.remove(&store, iv).unwrap();
                }
            }
            if step % 111 == 0 {
                let q = xorshift(&mut s, 11_000);
                let mut got: Vec<u64> =
                    ivs.stab(&store, q).unwrap().iter().map(|i| i.id).collect();
                got.sort_unstable();
                let mut want: Vec<u64> =
                    oracle.values().filter(|i| i.contains(q)).map(|i| i.id).collect();
                want.sort_unstable();
                assert_eq!(got, want, "step {step} q={q}");
            }
            assert_eq!(ivs.len(), oracle.len() as u64);
        }
    }

    #[test]
    fn endpoints_are_inclusive() {
        let store = PageStore::in_memory(512);
        let mut ivs = IntervalStore::new(&store).unwrap();
        ivs.insert(&store, Interval::new(5, 9, 1)).unwrap();
        assert_eq!(ivs.stab(&store, 5).unwrap().len(), 1);
        assert_eq!(ivs.stab(&store, 9).unwrap().len(), 1);
        assert_eq!(ivs.stab(&store, 4).unwrap().len(), 0);
        assert_eq!(ivs.stab(&store, 10).unwrap().len(), 0);
    }
}
