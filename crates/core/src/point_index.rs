//! Public facades over the PST variants: static 2-sided, static 3-sided,
//! and fully dynamic 2-sided indexes.

use pc_pagestore::{PageStore, Point, Result};
use pc_pst::{
    BasicPst, DynamicPst, MultilevelPst, NaivePst, SegmentedPst, ThreeSided, ThreeSidedPst,
    TwoLevelPst, TwoSided,
};

/// Which of the paper's structures backs a [`PointIndex`] — the space/time
/// trade-off dial of §3–§4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// [IKO] baseline: `O(n/B)` space, `O(log n + t/B)` queries.
    Naive,
    /// Lemma 3.1: optimal queries, `O((n/B)·log n)` space.
    Basic,
    /// Theorem 3.2: optimal queries, `O((n/B)·log B)` space.
    Segmented,
    /// Theorem 4.3: optimal queries, `O((n/B)·log log B)` space.
    TwoLevel,
    /// Theorem 4.4 with the given level count (saturates at `log* B`).
    Multilevel(u32),
}

/// Which quadrant a 2-sided query's free sides open toward.
///
/// The engine answers north-east dominance queries (`x >= x0 && y >= y0`);
/// other orientations are handled by negating coordinates at build and
/// query time, which is a bijection preserving all bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Quadrant {
    /// `x >= x0 && y >= y0` (the paper's Figure 4 orientation).
    #[default]
    NorthEast,
    /// `x <= x0 && y >= y0` — the orientation of interval stabbing.
    NorthWest,
    /// `x >= x0 && y <= y0`.
    SouthEast,
    /// `x <= x0 && y <= y0`.
    SouthWest,
}

impl Quadrant {
    fn flip_x(self) -> bool {
        matches!(self, Quadrant::NorthWest | Quadrant::SouthWest)
    }

    fn flip_y(self) -> bool {
        matches!(self, Quadrant::SouthEast | Quadrant::SouthWest)
    }

    fn to_internal(self, p: Point) -> Point {
        Point {
            x: if self.flip_x() { -p.x } else { p.x },
            y: if self.flip_y() { -p.y } else { p.y },
            id: p.id,
        }
    }

    fn back_to_user(self, p: Point) -> Point {
        // The transform is an involution.
        self.to_internal(p)
    }
}

enum Backend {
    Naive(NaivePst),
    Basic(BasicPst),
    Segmented(SegmentedPst),
    TwoLevel(TwoLevelPst),
    Multilevel(MultilevelPst),
}

/// A static index answering 2-sided (dominance) queries with the I/O
/// bounds of the chosen [`Variant`].
pub struct PointIndex {
    backend: Backend,
    quadrant: Quadrant,
}

impl PointIndex {
    /// Builds an index over `points` opening toward [`Quadrant::NorthEast`].
    pub fn build(store: &PageStore, points: &[Point], variant: Variant) -> Result<Self> {
        Self::build_oriented(store, points, variant, Quadrant::NorthEast)
    }

    /// Builds an index whose queries open toward `quadrant`.
    pub fn build_oriented(
        store: &PageStore,
        points: &[Point],
        variant: Variant,
        quadrant: Quadrant,
    ) -> Result<Self> {
        let internal: Vec<Point> = points.iter().map(|&p| quadrant.to_internal(p)).collect();
        let backend = match variant {
            Variant::Naive => Backend::Naive(NaivePst::build(store, &internal)?),
            Variant::Basic => Backend::Basic(BasicPst::build(store, &internal)?),
            Variant::Segmented => Backend::Segmented(SegmentedPst::build(store, &internal)?),
            Variant::TwoLevel => Backend::TwoLevel(TwoLevelPst::build(store, &internal)?),
            Variant::Multilevel(k) => {
                Backend::Multilevel(MultilevelPst::build(store, &internal, k)?)
            }
        };
        Ok(PointIndex { backend, quadrant })
    }

    /// Number of indexed points.
    pub fn len(&self) -> u64 {
        match &self.backend {
            Backend::Naive(b) => b.len(),
            Backend::Basic(b) => b.len(),
            Backend::Segmented(b) => b.len(),
            Backend::TwoLevel(b) => b.len(),
            Backend::Multilevel(b) => b.len(),
        }
    }

    /// True when no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reports all points dominating the corner in the index's quadrant.
    /// `q` is interpreted in *user* coordinates: e.g. for
    /// [`Quadrant::NorthWest`] the reported points satisfy
    /// `x <= q.x0 && y >= q.y0`.
    pub fn query(&self, store: &PageStore, q: TwoSided) -> Result<Vec<Point>> {
        let corner = self.quadrant.to_internal(Point::new(q.x0, q.y0, 0));
        let internal = TwoSided { x0: corner.x, y0: corner.y };
        let raw = match &self.backend {
            Backend::Naive(b) => b.query(store, internal)?,
            Backend::Basic(b) => b.query(store, internal)?,
            Backend::Segmented(b) => b.query(store, internal)?,
            Backend::TwoLevel(b) => b.query(store, internal)?,
            Backend::Multilevel(b) => b.query(store, internal)?,
        };
        Ok(raw.into_iter().map(|p| self.quadrant.back_to_user(p)).collect())
    }
}

/// A diagonal-corner query (Figure 1): a 2-sided query whose corner
/// `(q, q)` lies on the main diagonal — the special case that dynamic
/// interval management reduces to ([KRV]). Reported points satisfy
/// `x <= q && y >= q`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiagonalCorner {
    /// The diagonal coordinate of the corner.
    pub q: i64,
}

impl DiagonalCorner {
    /// True if `p` lies in the query region.
    pub fn contains(&self, p: &Point) -> bool {
        p.x <= self.q && p.y >= self.q
    }
}

impl PointIndex {
    /// Answers a diagonal-corner query. The index must have been built
    /// with [`Quadrant::NorthWest`] (the orientation whose free sides
    /// match Figure 1's diagonal-corner picture).
    ///
    /// # Panics
    ///
    /// Panics if the index was built for a different quadrant.
    pub fn query_diagonal(&self, store: &PageStore, q: DiagonalCorner) -> Result<Vec<Point>> {
        assert_eq!(
            self.quadrant,
            Quadrant::NorthWest,
            "diagonal-corner queries need a NorthWest-oriented index"
        );
        self.query(store, TwoSided { x0: q.q, y0: q.q })
    }
}

/// A static index answering 3-sided queries (`x1 <= x <= x2 && y >= y0`)
/// in optimal I/O (Theorem 3.3).
pub struct ThreeSidedIndex {
    inner: ThreeSidedPst,
}

impl ThreeSidedIndex {
    /// Builds the index over `points`.
    pub fn build(store: &PageStore, points: &[Point]) -> Result<Self> {
        Ok(ThreeSidedIndex { inner: ThreeSidedPst::build(store, points)? })
    }

    /// Number of indexed points.
    pub fn len(&self) -> u64 {
        self.inner.len()
    }

    /// True when no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Reports all points in the 3-sided region.
    pub fn query(&self, store: &PageStore, q: ThreeSided) -> Result<Vec<Point>> {
        self.inner.query(store, q)
    }
}

/// A fully dynamic 2-sided index (Theorem 5.1): optimal queries,
/// `O(log_B n)` amortized updates.
pub struct DynamicPointIndex {
    inner: DynamicPst,
}

impl DynamicPointIndex {
    /// Builds the index over an initial point set (ids must stay unique
    /// among live points).
    pub fn build(store: &PageStore, points: &[Point]) -> Result<Self> {
        Ok(DynamicPointIndex { inner: DynamicPst::build(store, points)? })
    }

    /// Number of live points.
    pub fn len(&self) -> u64 {
        self.inner.len()
    }

    /// True when no points are live.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Inserts a point.
    pub fn insert(&mut self, store: &PageStore, p: Point) -> Result<()> {
        self.inner.insert(store, p)
    }

    /// Deletes a point by full `(x, y, id)` identity.
    pub fn delete(&mut self, store: &PageStore, p: Point) -> Result<()> {
        self.inner.delete(store, p)
    }

    /// Reports all points with `x >= q.x0 && y >= q.y0`.
    pub fn query(&self, store: &PageStore, q: TwoSided) -> Result<Vec<Point>> {
        self.inner.query(store, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(state: &mut u64, bound: i64) -> i64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        (*state % bound as u64) as i64
    }

    fn random_points(n: usize, domain: i64, seed: u64) -> Vec<Point> {
        let mut s = seed;
        (0..n)
            .map(|id| Point::new(xorshift(&mut s, domain), xorshift(&mut s, domain), id as u64))
            .collect()
    }

    fn ids(mut pts: Vec<Point>) -> Vec<u64> {
        let mut out: Vec<u64> = pts.drain(..).map(|p| p.id).collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn all_variants_agree() {
        let store = PageStore::in_memory(512);
        let pts = random_points(2000, 9000, 0xbeef);
        let variants = [
            Variant::Naive,
            Variant::Basic,
            Variant::Segmented,
            Variant::TwoLevel,
            Variant::Multilevel(3),
        ];
        let indexes: Vec<PointIndex> = variants
            .iter()
            .map(|&v| PointIndex::build(&store, &pts, v).unwrap())
            .collect();
        let mut s = 0x11u64;
        for _ in 0..40 {
            let q = TwoSided { x0: xorshift(&mut s, 9000), y0: xorshift(&mut s, 9000) };
            let want: Vec<u64> = {
                let mut v: Vec<u64> =
                    pts.iter().filter(|p| q.contains(p)).map(|p| p.id).collect();
                v.sort_unstable();
                v
            };
            for (i, idx) in indexes.iter().enumerate() {
                assert_eq!(ids(idx.query(&store, q).unwrap()), want, "variant {i} {q:?}");
            }
        }
    }

    #[test]
    fn quadrants_orient_correctly() {
        let store = PageStore::in_memory(512);
        let pts = random_points(1500, 5000, 0xfeed);
        let mut s = 0x22u64;
        for quadrant in
            [Quadrant::NorthEast, Quadrant::NorthWest, Quadrant::SouthEast, Quadrant::SouthWest]
        {
            let idx =
                PointIndex::build_oriented(&store, &pts, Variant::Segmented, quadrant).unwrap();
            for _ in 0..20 {
                let q = TwoSided { x0: xorshift(&mut s, 5000), y0: xorshift(&mut s, 5000) };
                let got = ids(idx.query(&store, q).unwrap());
                let mut want: Vec<u64> = pts
                    .iter()
                    .filter(|p| {
                        let xok = if quadrant.flip_x() { p.x <= q.x0 } else { p.x >= q.x0 };
                        let yok = if quadrant.flip_y() { p.y <= q.y0 } else { p.y >= q.y0 };
                        xok && yok
                    })
                    .map(|p| p.id)
                    .collect();
                want.sort_unstable();
                assert_eq!(got, want, "{quadrant:?} {q:?}");
            }
        }
    }

    #[test]
    fn three_sided_index_roundtrip() {
        let store = PageStore::in_memory(512);
        let pts = random_points(1500, 5000, 0xaaaa);
        let idx = ThreeSidedIndex::build(&store, &pts).unwrap();
        let mut s = 0x33u64;
        for _ in 0..30 {
            let a = xorshift(&mut s, 5000);
            let q = ThreeSided { x1: a, x2: a + xorshift(&mut s, 2000), y0: xorshift(&mut s, 5000) };
            let got = ids(idx.query(&store, q).unwrap());
            let mut want: Vec<u64> =
                pts.iter().filter(|p| q.contains(p)).map(|p| p.id).collect();
            want.sort_unstable();
            assert_eq!(got, want, "{q:?}");
        }
    }

    #[test]
    fn dynamic_index_roundtrip() {
        let store = PageStore::in_memory(512);
        let mut idx = DynamicPointIndex::build(&store, &[]).unwrap();
        assert!(idx.is_empty());
        for i in 0..500u64 {
            idx.insert(&store, Point::new(i as i64, (i * 7 % 500) as i64, i)).unwrap();
        }
        assert_eq!(idx.len(), 500);
        let hits = idx.query(&store, TwoSided { x0: 250, y0: 0 }).unwrap();
        assert_eq!(hits.len(), 250);
        for i in 0..250u64 {
            idx.delete(&store, Point::new(i as i64, (i * 7 % 500) as i64, i)).unwrap();
        }
        assert_eq!(idx.len(), 250);
        let hits = idx.query(&store, TwoSided { x0: 0, y0: 0 }).unwrap();
        assert_eq!(hits.len(), 250);
        assert!(hits.iter().all(|p| p.x >= 250));
    }
}
