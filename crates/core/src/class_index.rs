//! Indexing class hierarchies — the paper's §1 object-oriented-database
//! application.
//!
//! [KRV] showed that answering "find the objects of class `c` *or any of
//! its subclasses* whose indexed attribute satisfies a bound" efficiently
//! is the key to indexing in object-oriented databases, and that it calls
//! for 3-sided 2-dimensional searching. We realize the reduction by
//! numbering the class hierarchy in preorder: the subtree of `c` occupies
//! the contiguous interval `[pre(c), post(c)]`, so the query *"objects in
//! subtree(c) with attribute ≥ v"* is exactly the 3-sided query
//! `x ∈ [pre(c), post(c)] ∧ y ≥ v` over points
//! `(x = class preorder, y = attribute)` — answered in optimal
//! `O(log_B n + t/B)` I/Os by [`pc_pst::ThreeSidedPst`] (Theorem 3.3).

use std::collections::HashMap;

use pc_pagestore::{PageStore, Point, Result};
use pc_pst::{ThreeSided, ThreeSidedPst};

/// Opaque identifier of a registered class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClassId(usize);

/// An object registered in the hierarchy: `(class, attribute, object id)`.
#[derive(Debug, Clone, Copy)]
struct PendingObject {
    class: ClassId,
    attr: i64,
    id: u64,
}

/// Builder: declare the class hierarchy and the objects, then
/// [`ClassIndexBuilder::build`].
#[derive(Default)]
pub struct ClassIndexBuilder {
    parents: Vec<Option<ClassId>>,
    objects: Vec<PendingObject>,
}

impl ClassIndexBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a class; `parent` is `None` for a root. Classes must be
    /// registered parent-first.
    pub fn add_class(&mut self, parent: Option<ClassId>) -> ClassId {
        if let Some(p) = parent {
            assert!(p.0 < self.parents.len(), "unknown parent class");
        }
        let id = ClassId(self.parents.len());
        self.parents.push(parent);
        id
    }

    /// Registers an object of `class` with the given indexed attribute.
    /// Object ids must be unique.
    pub fn add_object(&mut self, class: ClassId, attr: i64, id: u64) {
        assert!(class.0 < self.parents.len(), "unknown class");
        self.objects.push(PendingObject { class, attr, id });
    }

    /// Builds the index.
    pub fn build(self, store: &PageStore) -> Result<ClassIndex> {
        // Preorder numbering: children grouped per parent, DFS from roots.
        let n = self.parents.len();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut roots = Vec::new();
        for (i, parent) in self.parents.iter().enumerate() {
            match parent {
                Some(p) => children[p.0].push(i),
                None => roots.push(i),
            }
        }
        let mut pre = vec![0i64; n];
        let mut post = vec![0i64; n];
        let mut counter = 0i64;
        let mut stack: Vec<(usize, bool)> = roots.iter().rev().map(|&r| (r, false)).collect();
        while let Some((c, visited)) = stack.pop() {
            if visited {
                post[c] = counter - 1;
                continue;
            }
            pre[c] = counter;
            counter += 1;
            stack.push((c, true));
            for &child in children[c].iter().rev() {
                stack.push((child, false));
            }
        }

        let points: Vec<Point> = self
            .objects
            .iter()
            .map(|o| Point::new(pre[o.class.0], o.attr, o.id))
            .collect();
        let pst = ThreeSidedPst::build(store, &points)?;
        Ok(ClassIndex { pst, pre, post })
    }
}

/// A static index over a class hierarchy answering subtree-plus-attribute
/// queries as single 3-sided queries.
///
/// ```
/// use path_caching::{ClassIndexBuilder, PageStore};
///
/// let store = PageStore::in_memory(4096);
/// let mut b = ClassIndexBuilder::new();
/// let vehicle = b.add_class(None);
/// let car = b.add_class(Some(vehicle));
/// let truck = b.add_class(Some(vehicle));
/// b.add_object(car, 150, 1); // a car with top speed 150
/// b.add_object(truck, 120, 2);
/// b.add_object(vehicle, 90, 3);
/// let index = b.build(&store).unwrap();
/// // All vehicles (any subclass) with top speed >= 100:
/// let fast = index.query_subtree(&store, vehicle, 100).unwrap();
/// assert_eq!(fast.len(), 2);
/// // Only cars:
/// let fast_cars = index.query_subtree(&store, car, 100).unwrap();
/// assert_eq!(fast_cars, vec![1]);
/// ```
pub struct ClassIndex {
    pst: ThreeSidedPst,
    pre: Vec<i64>,
    post: Vec<i64>,
}

impl ClassIndex {
    /// Object ids in `class` or any of its subclasses whose attribute is
    /// at least `min_attr`. One 3-sided query: `O(log_B n + t/B)` I/Os.
    pub fn query_subtree(
        &self,
        store: &PageStore,
        class: ClassId,
        min_attr: i64,
    ) -> Result<Vec<u64>> {
        let q = ThreeSided { x1: self.pre[class.0], x2: self.post[class.0], y0: min_attr };
        let mut ids: Vec<u64> = self.pst.query(store, q)?.into_iter().map(|p| p.id).collect();
        ids.sort_unstable();
        Ok(ids)
    }

    /// Object ids in exactly `class` (no subclasses) with attribute at
    /// least `min_attr`.
    pub fn query_exact(
        &self,
        store: &PageStore,
        class: ClassId,
        min_attr: i64,
    ) -> Result<Vec<u64>> {
        let x = self.pre[class.0];
        let q = ThreeSided { x1: x, x2: x, y0: min_attr };
        let mut ids: Vec<u64> = self.pst.query(store, q)?.into_iter().map(|p| p.id).collect();
        ids.sort_unstable();
        Ok(ids)
    }

    /// Number of indexed objects.
    pub fn len(&self) -> u64 {
        self.pst.len()
    }

    /// True when no objects are indexed.
    pub fn is_empty(&self) -> bool {
        self.pst.is_empty()
    }

    /// Diagnostic: the preorder interval of a class (subtree id range).
    pub fn subtree_range(&self, class: ClassId) -> (i64, i64) {
        (self.pre[class.0], self.post[class.0])
    }

    /// Testing aid: brute-force subtree membership, used by differential
    /// tests.
    #[doc(hidden)]
    pub fn is_in_subtree(&self, class: ClassId, candidate_pre: i64) -> bool {
        self.pre[class.0] <= candidate_pre && candidate_pre <= self.post[class.0]
    }
}

/// Testing aid kept out of the public surface.
#[allow(dead_code)]
fn _assert_class_id_small() {
    let _ = HashMap::<ClassId, ()>::new();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(state: &mut u64, bound: i64) -> i64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        (*state % bound as u64) as i64
    }

    /// Random hierarchy + random objects, checked against brute force.
    #[test]
    fn random_hierarchy_matches_brute_force() {
        let store = PageStore::in_memory(512);
        let mut b = ClassIndexBuilder::new();
        let mut s = 0x777u64;
        let mut classes = vec![b.add_class(None)];
        let mut parent_of: HashMap<ClassId, Option<ClassId>> = HashMap::new();
        parent_of.insert(classes[0], None);
        for _ in 0..60 {
            let parent = classes[(xorshift(&mut s, classes.len() as i64)) as usize];
            let c = b.add_class(Some(parent));
            parent_of.insert(c, Some(parent));
            classes.push(c);
        }
        let mut objects = Vec::new();
        for id in 0..3000u64 {
            let class = classes[(xorshift(&mut s, classes.len() as i64)) as usize];
            let attr = xorshift(&mut s, 10_000);
            b.add_object(class, attr, id);
            objects.push((class, attr, id));
        }
        let index = b.build(&store).unwrap();

        let is_descendant = |mut c: ClassId, anc: ClassId| -> bool {
            loop {
                if c == anc {
                    return true;
                }
                match parent_of[&c] {
                    Some(p) => c = p,
                    None => return false,
                }
            }
        };

        for _ in 0..40 {
            let target = classes[(xorshift(&mut s, classes.len() as i64)) as usize];
            let min_attr = xorshift(&mut s, 10_000);
            let got = index.query_subtree(&store, target, min_attr).unwrap();
            let mut want: Vec<u64> = objects
                .iter()
                .filter(|(c, a, _)| *a >= min_attr && is_descendant(*c, target))
                .map(|(_, _, id)| *id)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "class {target:?} attr >= {min_attr}");
        }
    }

    #[test]
    fn exact_class_excludes_subclasses() {
        let store = PageStore::in_memory(512);
        let mut b = ClassIndexBuilder::new();
        let root = b.add_class(None);
        let child = b.add_class(Some(root));
        b.add_object(root, 10, 1);
        b.add_object(child, 10, 2);
        let index = b.build(&store).unwrap();
        assert_eq!(index.query_exact(&store, root, 0).unwrap(), vec![1]);
        assert_eq!(index.query_subtree(&store, root, 0).unwrap(), vec![1, 2]);
        assert_eq!(index.query_subtree(&store, child, 0).unwrap(), vec![2]);
    }

    #[test]
    fn forest_of_roots() {
        let store = PageStore::in_memory(512);
        let mut b = ClassIndexBuilder::new();
        let r1 = b.add_class(None);
        let r2 = b.add_class(None);
        let c1 = b.add_class(Some(r1));
        b.add_object(r1, 5, 1);
        b.add_object(r2, 5, 2);
        b.add_object(c1, 5, 3);
        let index = b.build(&store).unwrap();
        assert_eq!(index.query_subtree(&store, r1, 0).unwrap(), vec![1, 3]);
        assert_eq!(index.query_subtree(&store, r2, 0).unwrap(), vec![2]);
    }
}
