//! On-page node layout for the external B+-tree.
//!
//! Two node kinds share a one-byte tag:
//!
//! ```text
//! internal: [tag=0][count:u16][key * count][child:u64 * (count+1)]
//! leaf:     [tag=1][count:u16][next:u64][prev:u64][(key,value) * count]
//! ```
//!
//! Nodes are decoded into owned structs, mutated in memory, and re-encoded;
//! each read/write of a node is exactly one page I/O, matching the cost
//! model.

use pc_pagestore::codec::{PageReader, PageWriter};
use pc_pagestore::{PageId, PageStore, Record, Result, StoreError, NULL_PAGE};

const TAG_INTERNAL: u8 = 0;
const TAG_LEAF: u8 = 1;

/// An internal node: `children[i]` holds keys `k` with
/// `keys[i-1] <= k < keys[i]` (virtual sentinels at ±∞).
#[derive(Debug, Clone)]
pub struct Internal<K> {
    /// Separator keys, strictly increasing.
    pub keys: Vec<K>,
    /// Child page ids; always `keys.len() + 1` entries.
    pub children: Vec<PageId>,
}

/// A leaf node holding the actual entries, doubly linked to its neighbours.
#[derive(Debug, Clone)]
pub struct Leaf<K, V> {
    /// Sorted `(key, value)` entries.
    pub entries: Vec<(K, V)>,
    /// Next leaf in key order ([`NULL_PAGE`] at the right end).
    pub next: PageId,
    /// Previous leaf in key order ([`NULL_PAGE`] at the left end).
    pub prev: PageId,
}

/// A decoded B+-tree node.
#[derive(Debug, Clone)]
pub enum Node<K, V> {
    /// Routing node.
    Internal(Internal<K>),
    /// Entry-bearing node.
    Leaf(Leaf<K, V>),
}

impl<K: Record + Ord, V: Record> Node<K, V> {
    /// Maximum separator keys in an internal node for this page size.
    pub fn internal_capacity(page_size: usize) -> usize {
        // 3 header bytes, then c keys and c+1 children:
        //   3 + c*K + (c+1)*8 <= page_size
        let cap = (page_size - 3 - 8) / (K::ENCODED_LEN + 8);
        assert!(cap >= 4, "page size {page_size} gives internal fanout < 5");
        cap
    }

    /// Maximum entries in a leaf for this page size.
    pub fn leaf_capacity(page_size: usize) -> usize {
        // 3 header bytes + two sibling pointers, then c entries.
        let cap = (page_size - 3 - 16) / (K::ENCODED_LEN + V::ENCODED_LEN);
        assert!(cap >= 4, "page size {page_size} gives leaf capacity < 4");
        cap
    }

    /// Reads and decodes the node at `id` (one I/O).
    pub fn read(store: &PageStore, id: PageId) -> Result<Node<K, V>> {
        let page = store.read(id)?;
        let mut r = PageReader::new(&page);
        match r.get_u8()? {
            TAG_INTERNAL => {
                let count = r.get_u16()? as usize;
                let mut keys = Vec::with_capacity(count);
                for _ in 0..count {
                    keys.push(K::decode(&mut r)?);
                }
                let mut children = Vec::with_capacity(count + 1);
                for _ in 0..=count {
                    children.push(PageId(r.get_u64()?));
                }
                Ok(Node::Internal(Internal { keys, children }))
            }
            TAG_LEAF => {
                let count = r.get_u16()? as usize;
                let next = PageId(r.get_u64()?);
                let prev = PageId(r.get_u64()?);
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    let k = K::decode(&mut r)?;
                    let v = V::decode(&mut r)?;
                    entries.push((k, v));
                }
                Ok(Node::Leaf(Leaf { entries, next, prev }))
            }
            tag => Err(StoreError::Corrupt(format!("unknown b+tree node tag {tag}"))),
        }
    }

    /// Encodes and writes the node to `id` (one I/O).
    pub fn write(&self, store: &PageStore, id: PageId) -> Result<()> {
        let mut buf = vec![0u8; store.page_size()];
        let used = {
            let mut w = PageWriter::new(&mut buf);
            match self {
                Node::Internal(n) => {
                    debug_assert_eq!(n.children.len(), n.keys.len() + 1);
                    w.put_u8(TAG_INTERNAL)?;
                    w.put_u16(n.keys.len() as u16)?;
                    for k in &n.keys {
                        k.encode(&mut w)?;
                    }
                    for c in &n.children {
                        w.put_u64(c.0)?;
                    }
                }
                Node::Leaf(n) => {
                    w.put_u8(TAG_LEAF)?;
                    w.put_u16(n.entries.len() as u16)?;
                    w.put_u64(n.next.0)?;
                    w.put_u64(n.prev.0)?;
                    for (k, v) in &n.entries {
                        k.encode(&mut w)?;
                        v.encode(&mut w)?;
                    }
                }
            }
            w.position()
        };
        store.write(id, &buf[..used])
    }

    /// Convenience: unwrap as internal node.
    pub fn expect_internal(self) -> Internal<K> {
        match self {
            Node::Internal(n) => n,
            Node::Leaf(_) => panic!("expected internal node"),
        }
    }

    /// Convenience: unwrap as leaf node.
    pub fn expect_leaf(self) -> Leaf<K, V> {
        match self {
            Node::Leaf(n) => n,
            Node::Internal(_) => panic!("expected leaf node"),
        }
    }
}

impl<K: Ord> Internal<K> {
    /// Index of the child subtree that covers `key`.
    pub fn child_index(&self, key: &K) -> usize {
        // partition_point: number of separators <= key
        pc_pagestore::search::partition_point(&self.keys, |k| k <= key)
    }
}

pub fn empty_leaf<K, V>() -> Node<K, V> {
    Node::Leaf(Leaf { entries: Vec::new(), next: NULL_PAGE, prev: NULL_PAGE })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_roundtrip() {
        let store = PageStore::in_memory(256);
        let id = store.alloc().unwrap();
        let node: Node<i64, u64> = Node::Leaf(Leaf {
            entries: vec![(1, 10), (5, 50), (9, 90)],
            next: PageId(42),
            prev: NULL_PAGE,
        });
        node.write(&store, id).unwrap();
        let back = Node::<i64, u64>::read(&store, id).unwrap().expect_leaf();
        assert_eq!(back.entries, vec![(1, 10), (5, 50), (9, 90)]);
        assert_eq!(back.next, PageId(42));
        assert!(back.prev.is_null());
    }

    #[test]
    fn internal_roundtrip() {
        let store = PageStore::in_memory(256);
        let id = store.alloc().unwrap();
        let node: Node<i64, u64> = Node::Internal(Internal {
            keys: vec![10, 20],
            children: vec![PageId(1), PageId(2), PageId(3)],
        });
        node.write(&store, id).unwrap();
        let back = Node::<i64, u64>::read(&store, id).unwrap().expect_internal();
        assert_eq!(back.keys, vec![10, 20]);
        assert_eq!(back.children, vec![PageId(1), PageId(2), PageId(3)]);
    }

    #[test]
    fn child_index_routes_by_separator() {
        let n = Internal { keys: vec![10i64, 20, 30], children: vec![] };
        assert_eq!(n.child_index(&5), 0);
        assert_eq!(n.child_index(&10), 1, "separator key goes right");
        assert_eq!(n.child_index(&15), 1);
        assert_eq!(n.child_index(&29), 2);
        assert_eq!(n.child_index(&30), 3);
        assert_eq!(n.child_index(&99), 3);
    }

    #[test]
    fn capacities_are_sane() {
        let leaf = Node::<i64, u64>::leaf_capacity(4096);
        let internal = Node::<i64, u64>::internal_capacity(4096);
        assert_eq!(leaf, (4096 - 19) / 16);
        assert_eq!(internal, (4096 - 11) / 16);
        assert!(leaf > 200 && internal > 200);
    }

    #[test]
    fn corrupt_tag_is_detected() {
        let store = PageStore::in_memory(256);
        let id = store.alloc().unwrap();
        store.write(id, &[9u8, 0, 0]).unwrap();
        assert!(matches!(
            Node::<i64, u64>::read(&store, id),
            Err(StoreError::Corrupt(_))
        ));
    }
}
