//! Bottom-up bulk loading from sorted input.
//!
//! Building level by level writes each page exactly once — `O(n/B)` I/Os
//! total versus `O(n log_B n)` for repeated inserts — and produces fully
//! packed pages, which is how the experiments get clean `n/B` space
//! measurements for the baseline.

use pc_pagestore::{PageId, PageStore, Record, Result, NULL_PAGE};

use crate::node::{Internal, Leaf, Node};
use crate::tree::BTree;

impl<K: Record + Ord + Clone, V: Record + Clone> BTree<K, V> {
    /// Builds a tree from entries that are **sorted by key and distinct**.
    ///
    /// # Panics
    ///
    /// Debug-asserts the sort/distinctness precondition.
    pub fn bulk_build(store: &PageStore, entries: &[(K, V)]) -> Result<Self> {
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "bulk_build input must be sorted and distinct"
        );
        if entries.is_empty() {
            return BTree::new(store);
        }
        let leaf_cap = Node::<K, V>::leaf_capacity(store.page_size());
        let internal_cap = Node::<K, V>::internal_capacity(store.page_size());
        let min_leaf = leaf_cap / 2;

        // Partition entries into leaf-sized chunks, keeping the tail >= min
        // fill by stealing from the penultimate chunk when necessary.
        let mut cuts = chunk_sizes(entries.len(), leaf_cap, min_leaf.max(1));

        // Write leaves left to right, linking the chain as we go.
        let mut level: Vec<(K, PageId)> = Vec::with_capacity(cuts.len());
        let ids: Vec<PageId> = cuts.iter().map(|_| store.alloc()).collect::<Result<_>>()?;
        let mut offset = 0usize;
        for (i, size) in cuts.drain(..).enumerate() {
            let chunk = &entries[offset..offset + size];
            offset += size;
            let leaf = Leaf {
                entries: chunk.to_vec(),
                next: ids.get(i + 1).copied().unwrap_or(NULL_PAGE),
                prev: if i == 0 { NULL_PAGE } else { ids[i - 1] },
            };
            Node::Leaf(leaf).write(store, ids[i])?;
            level.push((chunk[0].0.clone(), ids[i]));
        }

        // Build internal levels until a single node remains.
        let mut height = 0u32;
        let min_children = internal_cap / 2 + 1;
        while level.len() > 1 {
            height += 1;
            let mut cuts = chunk_sizes(level.len(), internal_cap + 1, min_children);
            let mut next_level: Vec<(K, PageId)> = Vec::with_capacity(cuts.len());
            let mut offset = 0usize;
            for size in cuts.drain(..) {
                let group = &level[offset..offset + size];
                offset += size;
                let id = store.alloc()?;
                let node = Internal {
                    keys: group[1..].iter().map(|(k, _)| k.clone()).collect(),
                    children: group.iter().map(|(_, id)| *id).collect(),
                };
                Node::<K, V>::Internal(node).write(store, id)?;
                next_level.push((group[0].0.clone(), id));
            }
            level = next_level;
        }

        Ok(BTree::from_parts(level[0].1, height, entries.len() as u64))
    }
}

/// Splits `total` items into chunks of at most `cap`, each at least `min`
/// (except when `total < min`, which yields a single short chunk — the
/// root-only case).
fn chunk_sizes(total: usize, cap: usize, min: usize) -> Vec<usize> {
    debug_assert!(min <= cap);
    if total <= cap {
        return vec![total];
    }
    let mut sizes = Vec::with_capacity(total / cap + 2);
    let mut remaining = total;
    while remaining > cap {
        // Don't leave a too-small tail: cede part of this chunk if needed.
        let take = if remaining - cap < min { remaining - min } else { cap };
        sizes.push(take);
        remaining -= take;
    }
    sizes.push(remaining);
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_pagestore::PageStore;

    #[test]
    fn chunk_sizes_respects_bounds() {
        for total in 1..200 {
            for cap in 4..20 {
                let min = cap / 2;
                let sizes = chunk_sizes(total, cap, min.max(1));
                assert_eq!(sizes.iter().sum::<usize>(), total);
                assert!(sizes.iter().all(|&s| s <= cap), "total={total} cap={cap}");
                if total >= min {
                    assert!(
                        sizes.iter().all(|&s| s >= min.max(1)),
                        "total={total} cap={cap} sizes={sizes:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn bulk_build_matches_incremental() {
        let store = PageStore::in_memory(256);
        let entries: Vec<(i64, u64)> = (0..2000).map(|k| (k, (k * 2) as u64)).collect();
        let t = BTree::bulk_build(&store, &entries).unwrap();
        assert_eq!(t.len(), 2000);
        assert_eq!(t.scan_all(&store).unwrap(), entries);
        assert_eq!(t.get(&store, &999).unwrap(), Some(1998));
        assert_eq!(t.range(&store, &100, &110).unwrap().len(), 11);
    }

    #[test]
    fn bulk_build_empty_and_tiny() {
        let store = PageStore::in_memory(256);
        let t: BTree<i64, u64> = BTree::bulk_build(&store, &[]).unwrap();
        assert!(t.is_empty());
        let t = BTree::bulk_build(&store, &[(5i64, 50u64)]).unwrap();
        assert_eq!(t.get(&store, &5).unwrap(), Some(50));
        assert_eq!(t.height(), 0);
    }

    #[test]
    fn bulk_built_tree_accepts_updates() {
        let store = PageStore::in_memory(256);
        let entries: Vec<(i64, u64)> = (0..1000).map(|k| (k * 2, k as u64)).collect();
        let mut t = BTree::bulk_build(&store, &entries).unwrap();
        for k in 0..1000i64 {
            t.insert(&store, k * 2 + 1, 9).unwrap();
        }
        assert_eq!(t.len(), 2000);
        for k in 0..500i64 {
            assert!(t.delete(&store, &(k * 4)).unwrap().is_some());
        }
        assert_eq!(t.len(), 1500);
        let all = t.scan_all(&store).unwrap();
        assert_eq!(all.len(), 1500);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn bulk_build_space_is_near_optimal() {
        let store = PageStore::in_memory(256);
        let entries: Vec<(i64, u64)> = (0..10_000).map(|k| (k, k as u64)).collect();
        let _t = BTree::bulk_build(&store, &entries).unwrap();
        let leaf_cap = 14u64;
        let optimal = 10_000u64.div_ceil(leaf_cap);
        assert!(
            store.live_pages() <= optimal + optimal / 10 + 3,
            "bulk build used {} pages, optimal {optimal}",
            store.live_pages()
        );
    }
}
