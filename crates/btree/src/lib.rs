//! # pc-btree — external B+-tree
//!
//! A disk-resident B+-tree over the [`pc_pagestore::PageStore`] substrate.
//! In the paper's framing (§1) this is the structure whose 1-dimensional
//! optimality — `O(log_B n + t/B)` range queries, `O(log_B n)` worst-case
//! updates, `O(n/B)` space — sets the bar that path caching matches in two
//! dimensions. It serves two roles in the reproduction:
//!
//! 1. **Baseline E1**: empirical validation of the 1-d bounds.
//! 2. **Substrate**: the index crates use it as an ordered map (e.g. the
//!    dynamic PST maps x-division boundaries to super-node pages).
//!
//! ## Structure
//!
//! Classic B+-tree: internal nodes hold separator keys and child pointers;
//! all entries live in doubly-linked leaves, enabling forward range scans
//! and predecessor lookups. Fanout is derived from the page size, so a
//! store with `4096`-byte pages and 24-byte entries yields fanout in the
//! hundreds — `log_B n` is 3 even for a billion keys.
//!
//! ```
//! use pc_btree::BTree;
//! use pc_pagestore::PageStore;
//!
//! let store = PageStore::in_memory(4096);
//! let mut tree: BTree<i64, u64> = BTree::new(&store).unwrap();
//! for k in 0..1000 {
//!     tree.insert(&store, k, (k * k) as u64).unwrap();
//! }
//! assert_eq!(tree.get(&store, &31).unwrap(), Some(961));
//! let hits = tree.range(&store, &10, &15).unwrap();
//! assert_eq!(hits.len(), 6);
//! ```

mod bulk;
mod node;
mod repack;
mod tree;

pub use tree::BTree;
