//! van Emde Boas repacking of a built B+-tree.
//!
//! See [`pc_pagestore::repack`] for the overall scheme. The B+-tree's page
//! graph is the node tree itself: internal children are tree edges, while
//! the leaf chain's `next`/`prev` links are *not* — every leaf is already
//! reachable as some internal node's child, so the sibling pointers are
//! merely remapped during the rewrite.

use std::collections::HashSet;

use pc_pagestore::repack::{ensure_quiesced, PageGraph, Relocation};
use pc_pagestore::{PageId, PageStore, Record, Result};

use crate::node::{Internal, Leaf, Node};
use crate::tree::BTree;

impl<K: Record + Ord + Clone, V: Record + Clone> BTree<K, V> {
    /// Records this tree's pages into `graph` (one descent's worth of
    /// reads per page). A no-op if the root is already in the graph.
    pub fn collect_pages(&self, store: &PageStore, graph: &mut PageGraph) -> Result<()> {
        let Some(root_idx) = graph.add_root(self.root_page()) else {
            return Ok(());
        };
        self.collect_below(store, graph, self.root_page(), root_idx)
    }

    fn collect_below(
        &self,
        store: &PageStore,
        graph: &mut PageGraph,
        page: PageId,
        idx: usize,
    ) -> Result<()> {
        if let Node::Internal(n) = Node::<K, V>::read(store, page)? {
            for child in n.children {
                if let Some(child_idx) = graph.add_child(idx, child) {
                    self.collect_below(store, graph, child, child_idx)?;
                }
            }
        }
        Ok(())
    }

    /// Re-encodes every page into `dst` at its relocated id, mapping child
    /// pointers and leaf sibling links through `map`. Returns the handle
    /// of the relocated tree.
    pub fn rewrite_into(
        &self,
        src: &PageStore,
        dst: &PageStore,
        map: &Relocation,
    ) -> Result<Self> {
        let mut visited = HashSet::new();
        let mut stack = vec![self.root_page()];
        while let Some(page) = stack.pop() {
            if !visited.insert(page.0) {
                continue;
            }
            match Node::<K, V>::read(src, page)? {
                Node::Internal(n) => {
                    stack.extend_from_slice(&n.children);
                    let children =
                        n.children.iter().map(|&c| map.get(c)).collect::<Result<Vec<_>>>()?;
                    Node::<K, V>::Internal(Internal { keys: n.keys, children })
                        .write(dst, map.get(page)?)?;
                }
                Node::Leaf(leaf) => {
                    let moved = Leaf {
                        entries: leaf.entries,
                        next: map.get(leaf.next)?,
                        prev: map.get(leaf.prev)?,
                    };
                    Node::Leaf(moved).write(dst, map.get(page)?)?;
                }
            }
        }
        Ok(BTree::from_parts(map.get(self.root_page())?, self.height(), self.len()))
    }

    /// Rewrites this tree into `dst` in van Emde Boas page order and
    /// returns the relocated handle. Both stores must be quiesced (no
    /// uncheckpointed dirty pages); `dst` is typically fresh, in which
    /// case allocation order equals physical order.
    pub fn repack(&self, src: &PageStore, dst: &PageStore) -> Result<Self> {
        ensure_quiesced(src)?;
        ensure_quiesced(dst)?;
        let mut graph = PageGraph::new();
        self.collect_pages(src, &mut graph)?;
        let reloc = Relocation::alloc_in(&graph.veb_order(), dst)?;
        self.rewrite_into(src, dst, &reloc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repacked_tree_answers_identically() {
        let src = PageStore::in_memory(256);
        let mut t: BTree<i64, u64> = BTree::new(&src).unwrap();
        for k in 0..2000i64 {
            t.insert(&src, k * 7 % 4001, k as u64).unwrap();
        }
        let dst = PageStore::in_memory(256);
        let packed = t.repack(&src, &dst).unwrap();
        assert_eq!(packed.len(), t.len());
        assert_eq!(packed.height(), t.height());
        assert_eq!(dst.live_pages(), src.live_pages());
        assert_eq!(packed.scan_all(&dst).unwrap(), t.scan_all(&src).unwrap());
        for probe in [-5i64, 0, 1, 7, 1234, 4000, 9999] {
            assert_eq!(packed.get(&dst, &probe).unwrap(), t.get(&src, &probe).unwrap());
            assert_eq!(packed.pred(&dst, &probe).unwrap(), t.pred(&src, &probe).unwrap());
        }
        assert_eq!(
            packed.range(&dst, &100, &900).unwrap(),
            t.range(&src, &100, &900).unwrap()
        );
    }

    #[test]
    fn repack_into_fresh_store_places_root_first() {
        let src = PageStore::in_memory(256);
        let mut t: BTree<i64, u64> = BTree::new(&src).unwrap();
        for k in 0..500i64 {
            t.insert(&src, k, k as u64).unwrap();
        }
        assert!(t.height() >= 2);
        let dst = PageStore::in_memory(256);
        let packed = t.repack(&src, &dst).unwrap();
        assert_eq!(packed.root_page(), PageId(0), "vEB order starts at the root");
    }

    #[test]
    fn repack_transfer_counts_are_identical() {
        let src = PageStore::in_memory(256);
        let mut t: BTree<i64, u64> = BTree::new(&src).unwrap();
        for k in 0..3000i64 {
            t.insert(&src, k, k as u64).unwrap();
        }
        let dst = PageStore::in_memory(256);
        let packed = t.repack(&src, &dst).unwrap();
        for probe in [0i64, 1499, 2999] {
            src.reset_stats();
            t.get(&src, &probe).unwrap();
            let before = src.stats().reads;
            dst.reset_stats();
            packed.get(&dst, &probe).unwrap();
            assert_eq!(dst.stats().reads, before, "probe {probe}");
        }
    }

    #[test]
    fn repack_empty_tree() {
        let src = PageStore::in_memory(256);
        let t: BTree<i64, u64> = BTree::new(&src).unwrap();
        let dst = PageStore::in_memory(256);
        let packed = t.repack(&src, &dst).unwrap();
        assert!(packed.is_empty());
        assert_eq!(packed.scan_all(&dst).unwrap(), vec![]);
    }

    #[test]
    fn repack_refuses_dirty_durable_source() {
        let (src, _) = PageStore::in_memory_durable(256);
        let mut t: BTree<i64, u64> = BTree::new(&src).unwrap();
        t.insert(&src, 1, 1).unwrap();
        let dst = PageStore::in_memory(256);
        let err = t.repack(&src, &dst).unwrap_err();
        assert!(matches!(err, pc_pagestore::StoreError::DirtyStore { .. }), "{err}");
        src.sync().unwrap();
        src.checkpoint().unwrap();
        let packed = t.repack(&src, &dst).unwrap();
        assert_eq!(packed.get(&dst, &1).unwrap(), Some(1));
    }
}
