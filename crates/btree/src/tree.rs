//! B+-tree operations: point lookup, predecessor search, range scan,
//! insert, and delete with full borrow/merge rebalancing.
//!
//! All costs are in page I/Os against the backing [`PageStore`]:
//!
//! * `get`, `pred`: `O(log_B n)`
//! * `range`: `O(log_B n + t/B)`
//! * `insert`, `delete`: `O(log_B n)` worst case
//!
//! These are the 1-d optimal bounds the paper cites for B+-trees (§1) and
//! that experiment E1 validates empirically.

use pc_pagestore::search;
use pc_pagestore::{PageId, PageStore, Record, Result};

use crate::node::{empty_leaf, Internal, Leaf, Node};

/// Descent result: the internal-node path `(page, node, taken-child)` plus
/// the reached leaf's page and contents.
type DescentPath<K, V> = (Vec<(PageId, Internal<K>, usize)>, PageId, Leaf<K, V>);

/// A disk-resident B+-tree mapping `K` to `V` with map semantics
/// (inserting an existing key replaces its value).
#[derive(Debug, Clone)]
pub struct BTree<K, V> {
    root: PageId,
    height: u32,
    len: u64,
    _marker: std::marker::PhantomData<fn() -> (K, V)>,
}

impl<K: Record + Ord + Clone, V: Record + Clone> BTree<K, V> {
    /// Creates an empty tree (allocates one leaf page).
    pub fn new(store: &PageStore) -> Result<Self> {
        let root = store.alloc()?;
        empty_leaf::<K, V>().write(store, root)?;
        Ok(BTree { root, height: 0, len: 0, _marker: std::marker::PhantomData })
    }

    /// Number of entries.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height in levels above the leaves (0 = root is a leaf).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Root page id (exposed for space accounting in experiments).
    pub fn root_page(&self) -> PageId {
        self.root
    }

    fn min_leaf(store: &PageStore) -> usize {
        Node::<K, V>::leaf_capacity(store.page_size()) / 2
    }

    fn min_internal(store: &PageStore) -> usize {
        Node::<K, V>::internal_capacity(store.page_size()) / 2
    }

    /// Descends to the leaf covering `key`, returning the path of internal
    /// nodes `(page, node, taken-child-index)` and the leaf `(page, node)`.
    fn descend(&self, store: &PageStore, key: &K) -> Result<DescentPath<K, V>> {
        let mut path = Vec::with_capacity(self.height as usize);
        let mut cur = self.root;
        loop {
            match Node::<K, V>::read(store, cur)? {
                Node::Internal(n) => {
                    let idx = n.child_index(key);
                    let child = n.children[idx];
                    path.push((cur, n, idx));
                    cur = child;
                }
                Node::Leaf(leaf) => return Ok((path, cur, leaf)),
            }
        }
    }

    /// Point lookup: the value stored under `key`, if any. `O(log_B n)`.
    pub fn get(&self, store: &PageStore, key: &K) -> Result<Option<V>> {
        let _span = pc_obs::span!("btree_get");
        let (_, _, leaf) = self.descend(store, key)?;
        let i = search::partition_point(&leaf.entries, |(k, _)| k < key);
        Ok(leaf.entries.get(i).filter(|(k, _)| k == key).map(|(_, v)| v.clone()))
    }

    /// Predecessor lookup: the entry with the greatest key `<= key`.
    /// `O(log_B n)` — at most one extra I/O to hop to the previous leaf.
    pub fn pred(&self, store: &PageStore, key: &K) -> Result<Option<(K, V)>> {
        let _span = pc_obs::span!("btree_pred");
        let (_, _, leaf) = self.descend(store, key)?;
        let idx = search::partition_point(&leaf.entries, |(k, _)| k <= key);
        if idx > 0 {
            return Ok(Some(leaf.entries[idx - 1].clone()));
        }
        if leaf.prev.is_null() {
            return Ok(None);
        }
        let prev = Node::<K, V>::read(store, leaf.prev)?.expect_leaf();
        Ok(prev.entries.last().cloned())
    }

    /// Range scan over `lo..=hi` in key order. `O(log_B n + t/B)` I/Os:
    /// one root-to-leaf descent plus a walk along the leaf chain.
    pub fn range(&self, store: &PageStore, lo: &K, hi: &K) -> Result<Vec<(K, V)>> {
        let _span = pc_obs::span!("btree_range");
        pc_obs::set_block_capacity(Node::<K, V>::leaf_capacity(store.page_size()) as u64);
        let mut out = Vec::new();
        if lo > hi {
            return Ok(out);
        }
        let (_, _, mut leaf) = self.descend(store, lo)?;
        let _scan = pc_obs::span!(output: "leaf_scan");
        loop {
            let before = out.len();
            let mut past_hi = false;
            for (k, v) in &leaf.entries {
                if k > hi {
                    past_hi = true;
                    break;
                }
                if k >= lo {
                    out.push((k.clone(), v.clone()));
                }
            }
            pc_obs::add_items((out.len() - before) as u64);
            if past_hi || leaf.next.is_null() {
                return Ok(out);
            }
            leaf = Node::<K, V>::read(store, leaf.next)?.expect_leaf();
        }
    }

    /// Every entry in key order (testing/diagnostics; `O(n/B)` I/Os).
    pub fn scan_all(&self, store: &PageStore) -> Result<Vec<(K, V)>> {
        let _span = pc_obs::span!("btree_scan");
        pc_obs::set_block_capacity(Node::<K, V>::leaf_capacity(store.page_size()) as u64);
        // Walk down the leftmost spine, then along the leaf chain.
        let mut cur = self.root;
        loop {
            match Node::<K, V>::read(store, cur)? {
                Node::Internal(n) => cur = n.children[0],
                Node::Leaf(first) => {
                    let _scan = pc_obs::span!(output: "leaf_scan");
                    let mut out = Vec::with_capacity(self.len as usize);
                    let mut leaf = first;
                    loop {
                        pc_obs::add_items(leaf.entries.len() as u64);
                        out.extend(leaf.entries.iter().cloned());
                        if leaf.next.is_null() {
                            return Ok(out);
                        }
                        leaf = Node::<K, V>::read(store, leaf.next)?.expect_leaf();
                    }
                }
            }
        }
    }

    /// Inserts `key -> value`; returns the previous value if the key was
    /// present. `O(log_B n)` worst case (one descent, splits on the way
    /// back up).
    pub fn insert(&mut self, store: &PageStore, key: K, value: V) -> Result<Option<V>> {
        let _span = pc_obs::span!("btree_insert");
        let leaf_cap = Node::<K, V>::leaf_capacity(store.page_size());
        let internal_cap = Node::<K, V>::internal_capacity(store.page_size());

        let (mut path, leaf_id, mut leaf) = self.descend(store, &key)?;
        let i = search::partition_point(&leaf.entries, |(k, _)| k < &key);
        if leaf.entries.get(i).is_some_and(|(k, _)| *k == key) {
            let old = std::mem::replace(&mut leaf.entries[i].1, value);
            Node::Leaf(leaf).write(store, leaf_id)?;
            return Ok(Some(old));
        }
        leaf.entries.insert(i, (key, value));
        self.len += 1;

        if leaf.entries.len() <= leaf_cap {
            Node::Leaf(leaf).write(store, leaf_id)?;
            return Ok(None);
        }

        // Split the leaf.
        let mid = leaf.entries.len() / 2;
        let right_entries = leaf.entries.split_off(mid);
        let mut sep = right_entries[0].0.clone();
        let right_id = store.alloc()?;
        let right = Leaf { entries: right_entries, next: leaf.next, prev: leaf_id };
        if !right.next.is_null() {
            let mut after = Node::<K, V>::read(store, right.next)?.expect_leaf();
            after.prev = right_id;
            Node::Leaf(after).write(store, right.next)?;
        }
        leaf.next = right_id;
        Node::Leaf(right).write(store, right_id)?;
        Node::Leaf(leaf).write(store, leaf_id)?;

        // Propagate the split upward.
        let mut new_child = right_id;
        while let Some((page, mut node, idx)) = path.pop() {
            node.keys.insert(idx, sep);
            node.children.insert(idx + 1, new_child);
            if node.keys.len() <= internal_cap {
                Node::<K, V>::Internal(node).write(store, page)?;
                return Ok(None);
            }
            let mid = node.keys.len() / 2;
            let up = node.keys[mid].clone();
            let right_keys = node.keys.split_off(mid + 1);
            node.keys.pop(); // `up` moves to the parent
            let right_children = node.children.split_off(mid + 1);
            let right_id = store.alloc()?;
            Node::<K, V>::Internal(Internal { keys: right_keys, children: right_children })
                .write(store, right_id)?;
            Node::<K, V>::Internal(node).write(store, page)?;
            sep = up;
            new_child = right_id;
        }

        // The root itself split: grow the tree by one level.
        let old_root = self.root;
        let new_root = store.alloc()?;
        Node::<K, V>::Internal(Internal {
            keys: vec![sep],
            children: vec![old_root, new_child],
        })
        .write(store, new_root)?;
        self.root = new_root;
        self.height += 1;
        Ok(None)
    }

    /// Removes `key`, returning its value if present. `O(log_B n)` worst
    /// case, with borrow/merge rebalancing so all non-root nodes stay at
    /// least half full.
    pub fn delete(&mut self, store: &PageStore, key: &K) -> Result<Option<V>> {
        let _span = pc_obs::span!("btree_delete");
        let (mut path, leaf_id, mut leaf) = self.descend(store, key)?;
        let i = search::partition_point(&leaf.entries, |(k, _)| k < key);
        if leaf.entries.get(i).is_none_or(|(k, _)| k != key) {
            return Ok(None);
        }
        let removed = leaf.entries.remove(i).1;
        self.len -= 1;

        let min_leaf = Self::min_leaf(store);
        if path.is_empty() || leaf.entries.len() >= min_leaf {
            Node::Leaf(leaf).write(store, leaf_id)?;
            return Ok(Some(removed));
        }

        // Leaf underflow: borrow from or merge with a sibling.
        let (parent_id, mut parent, idx) = path.pop().expect("non-root leaf has a parent");
        self.fix_leaf_underflow(store, &mut parent, idx, leaf_id, leaf)?;

        // Parent (and ancestors) may now underflow.
        let min_internal = Self::min_internal(store);
        let mut cur_id = parent_id;
        let mut cur = parent;
        loop {
            if path.is_empty() {
                // `cur` is the root.
                if cur.keys.is_empty() {
                    // Root has a single child: shrink the tree.
                    let only = cur.children[0];
                    store.free(cur_id)?;
                    self.root = only;
                    self.height -= 1;
                } else {
                    Node::<K, V>::Internal(cur).write(store, cur_id)?;
                }
                return Ok(Some(removed));
            }
            if cur.keys.len() >= min_internal {
                Node::<K, V>::Internal(cur).write(store, cur_id)?;
                return Ok(Some(removed));
            }
            let (parent_id, mut parent, idx) = path.pop().expect("checked non-empty");
            self.fix_internal_underflow(store, &mut parent, idx, cur_id, cur)?;
            cur_id = parent_id;
            cur = parent;
        }
    }

    /// Restores the minimum-fill invariant for the leaf `cur` (child `idx`
    /// of `parent`), writing every touched node. `parent` is updated in
    /// memory only; the caller writes it (or recurses).
    fn fix_leaf_underflow(
        &mut self,
        store: &PageStore,
        parent: &mut Internal<K>,
        idx: usize,
        cur_id: PageId,
        mut cur: Leaf<K, V>,
    ) -> Result<()> {
        let min_leaf = Self::min_leaf(store);

        // Try borrowing from the left sibling.
        if idx > 0 {
            let left_id = parent.children[idx - 1];
            let mut left = Node::<K, V>::read(store, left_id)?.expect_leaf();
            if left.entries.len() > min_leaf {
                let moved = left.entries.pop().expect("left sibling is nonempty");
                parent.keys[idx - 1] = moved.0.clone();
                cur.entries.insert(0, moved);
                Node::Leaf(left).write(store, left_id)?;
                Node::Leaf(cur).write(store, cur_id)?;
                return Ok(());
            }
            // Merge `cur` into `left`.
            left.entries.append(&mut cur.entries);
            left.next = cur.next;
            if !cur.next.is_null() {
                let mut after = Node::<K, V>::read(store, cur.next)?.expect_leaf();
                after.prev = left_id;
                Node::Leaf(after).write(store, cur.next)?;
            }
            Node::Leaf(left).write(store, left_id)?;
            store.free(cur_id)?;
            parent.keys.remove(idx - 1);
            parent.children.remove(idx);
            return Ok(());
        }

        // Leftmost child: use the right sibling.
        let right_id = parent.children[idx + 1];
        let mut right = Node::<K, V>::read(store, right_id)?.expect_leaf();
        if right.entries.len() > min_leaf {
            let moved = right.entries.remove(0);
            parent.keys[idx] = right.entries[0].0.clone();
            cur.entries.push(moved);
            Node::Leaf(right).write(store, right_id)?;
            Node::Leaf(cur).write(store, cur_id)?;
            return Ok(());
        }
        // Merge `right` into `cur`.
        cur.entries.append(&mut right.entries);
        cur.next = right.next;
        if !right.next.is_null() {
            let mut after = Node::<K, V>::read(store, right.next)?.expect_leaf();
            after.prev = cur_id;
            Node::Leaf(after).write(store, right.next)?;
        }
        Node::Leaf(cur).write(store, cur_id)?;
        store.free(right_id)?;
        parent.keys.remove(idx);
        parent.children.remove(idx + 1);
        Ok(())
    }

    /// Same as [`Self::fix_leaf_underflow`] for an internal child, rotating
    /// or merging through the parent separator.
    fn fix_internal_underflow(
        &mut self,
        store: &PageStore,
        parent: &mut Internal<K>,
        idx: usize,
        cur_id: PageId,
        mut cur: Internal<K>,
    ) -> Result<()> {
        let min_internal = Self::min_internal(store);

        if idx > 0 {
            let left_id = parent.children[idx - 1];
            let mut left = Node::<K, V>::read(store, left_id)?.expect_internal();
            if left.keys.len() > min_internal {
                // Rotate right through the separator.
                let sep = std::mem::replace(
                    &mut parent.keys[idx - 1],
                    left.keys.pop().expect("left sibling has keys"),
                );
                cur.keys.insert(0, sep);
                cur.children.insert(0, left.children.pop().expect("left sibling has children"));
                Node::<K, V>::Internal(left).write(store, left_id)?;
                Node::<K, V>::Internal(cur).write(store, cur_id)?;
                return Ok(());
            }
            // Merge `cur` into `left` with the separator between them.
            left.keys.push(parent.keys.remove(idx - 1));
            left.keys.append(&mut cur.keys);
            left.children.append(&mut cur.children);
            parent.children.remove(idx);
            Node::<K, V>::Internal(left).write(store, left_id)?;
            store.free(cur_id)?;
            return Ok(());
        }

        let right_id = parent.children[idx + 1];
        let mut right = Node::<K, V>::read(store, right_id)?.expect_internal();
        if right.keys.len() > min_internal {
            // Rotate left through the separator.
            let sep = std::mem::replace(&mut parent.keys[idx], right.keys.remove(0));
            cur.keys.push(sep);
            cur.children.push(right.children.remove(0));
            Node::<K, V>::Internal(right).write(store, right_id)?;
            Node::<K, V>::Internal(cur).write(store, cur_id)?;
            return Ok(());
        }
        // Merge `right` into `cur`.
        cur.keys.push(parent.keys.remove(idx));
        cur.keys.append(&mut right.keys);
        cur.children.append(&mut right.children);
        parent.children.remove(idx + 1);
        Node::<K, V>::Internal(cur).write(store, cur_id)?;
        store.free(right_id)?;
        Ok(())
    }

    /// Reconstructs a tree handle from its raw parts, as previously
    /// observed via [`BTree::root_page`], [`BTree::height`] and
    /// [`BTree::len`]. Used by structures that embed a B-tree handle inside
    /// their own pages; the caller must supply values describing a tree
    /// that actually exists in the store.
    pub fn from_parts(root: PageId, height: u32, len: u64) -> Self {
        BTree { root, height, len, _marker: std::marker::PhantomData }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_pagestore::PageStore;

    /// Small pages force deep trees: 256-byte pages hold 15 leaf entries
    /// and 15 separators, so a few hundred keys already give height >= 2.
    fn small_store() -> PageStore {
        PageStore::in_memory(256)
    }

    #[test]
    fn insert_get_roundtrip() {
        let store = small_store();
        let mut t: BTree<i64, u64> = BTree::new(&store).unwrap();
        for k in 0..500i64 {
            assert_eq!(t.insert(&store, k * 3, (k * 3) as u64).unwrap(), None);
        }
        assert_eq!(t.len(), 500);
        assert!(t.height() >= 2, "tree should be multi-level, got {}", t.height());
        for k in 0..500i64 {
            assert_eq!(t.get(&store, &(k * 3)).unwrap(), Some((k * 3) as u64));
            assert_eq!(t.get(&store, &(k * 3 + 1)).unwrap(), None);
        }
    }

    #[test]
    fn insert_replaces_existing() {
        let store = small_store();
        let mut t: BTree<i64, u64> = BTree::new(&store).unwrap();
        assert_eq!(t.insert(&store, 7, 1).unwrap(), None);
        assert_eq!(t.insert(&store, 7, 2).unwrap(), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&store, &7).unwrap(), Some(2));
    }

    #[test]
    fn range_scan_matches_filter() {
        let store = small_store();
        let mut t: BTree<i64, u64> = BTree::new(&store).unwrap();
        for k in (0..1000i64).rev() {
            t.insert(&store, k, k as u64).unwrap();
        }
        let got = t.range(&store, &250, &333).unwrap();
        let want: Vec<(i64, u64)> = (250..=333).map(|k| (k, k as u64)).collect();
        assert_eq!(got, want);
        assert!(t.range(&store, &10, &5).unwrap().is_empty());
        assert_eq!(t.range(&store, &-100, &-1).unwrap(), vec![]);
        assert_eq!(t.range(&store, &990, &2000).unwrap().len(), 10);
    }

    #[test]
    fn pred_finds_greatest_at_most() {
        let store = small_store();
        let mut t: BTree<i64, u64> = BTree::new(&store).unwrap();
        for k in 0..100i64 {
            t.insert(&store, k * 10, k as u64).unwrap();
        }
        assert_eq!(t.pred(&store, &55).unwrap(), Some((50, 5)));
        assert_eq!(t.pred(&store, &50).unwrap(), Some((50, 5)));
        assert_eq!(t.pred(&store, &0).unwrap(), Some((0, 0)));
        assert_eq!(t.pred(&store, &-1).unwrap(), None);
        assert_eq!(t.pred(&store, &100_000).unwrap(), Some((990, 99)));
    }

    #[test]
    fn delete_all_in_random_order() {
        let store = small_store();
        let mut t: BTree<i64, u64> = BTree::new(&store).unwrap();
        let n = 600i64;
        for k in 0..n {
            t.insert(&store, k, k as u64).unwrap();
        }
        // Pseudo-random but deterministic deletion order.
        let mut keys: Vec<i64> = (0..n).collect();
        let mut state = 0x2545_f491_4f6c_dd1du64;
        for i in (1..keys.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            keys.swap(i, (state % (i as u64 + 1)) as usize);
        }
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(t.delete(&store, k).unwrap(), Some(*k as u64), "key {k}");
            assert_eq!(t.delete(&store, k).unwrap(), None, "double delete {k}");
            assert_eq!(t.len(), n as u64 - i as u64 - 1);
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 0, "tree should shrink back to a single leaf");
        assert_eq!(t.scan_all(&store).unwrap(), vec![]);
    }

    #[test]
    fn interleaved_insert_delete_stays_consistent() {
        let store = small_store();
        let mut t: BTree<i64, u64> = BTree::new(&store).unwrap();
        let mut oracle = std::collections::BTreeMap::new();
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        for step in 0..3000u64 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let key = (state % 200) as i64;
            if state.is_multiple_of(3) {
                assert_eq!(t.delete(&store, &key).unwrap(), oracle.remove(&key), "step {step}");
            } else {
                assert_eq!(
                    t.insert(&store, key, step).unwrap(),
                    oracle.insert(key, step),
                    "step {step}"
                );
            }
            assert_eq!(t.len(), oracle.len() as u64);
        }
        let got = t.scan_all(&store).unwrap();
        let want: Vec<(i64, u64)> = oracle.into_iter().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn query_io_is_logarithmic() {
        let store = PageStore::in_memory(256); // fanout ~15
        let mut t: BTree<i64, u64> = BTree::new(&store).unwrap();
        let n = 10_000i64;
        for k in 0..n {
            t.insert(&store, k, k as u64).unwrap();
        }
        // height+1 node reads per point query
        store.reset_stats();
        t.get(&store, &(n / 2)).unwrap();
        let per_query = store.stats().reads;
        assert_eq!(per_query, t.height() as u64 + 1);
        assert!(per_query <= 5, "log_B n should be tiny, got {per_query}");

        // range of t entries: descent + ~t/B leaf pages
        store.reset_stats();
        let hits = t.range(&store, &1000, &1999).unwrap();
        assert_eq!(hits.len(), 1000);
        let leaf_cap = 1000 / 14; // min-fill means <= 2x optimal pages
        assert!(
            store.stats().reads <= (t.height() as u64 + 1) + 2 * leaf_cap as u64 + 2,
            "range read {} pages",
            store.stats().reads
        );
    }

    #[test]
    fn space_is_linear() {
        let store = PageStore::in_memory(256);
        let mut t: BTree<i64, u64> = BTree::new(&store).unwrap();
        let n = 10_000u64;
        for k in 0..n {
            t.insert(&store, k as i64, k).unwrap();
        }
        let pages = store.live_pages();
        let leaf_cap = 14u64; // (256 - 19) / 16 = 14
        // Half-full worst case: <= ~2n/B leaves plus internal overhead.
        assert!(pages <= 3 * n / leaf_cap, "space {pages} pages not O(n/B)");
    }
}
