//! Deterministic stress sweep for the dynamic PST: many seeds, sorted-key
//! victim selection (no HashMap iteration-order dependence).

use std::collections::HashMap;

use pc_pagestore::{PageStore, Point};
use pc_pst::{DynamicPst, TwoSided};

fn xorshift(state: &mut u64, bound: i64) -> i64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    (*state % bound as u64) as i64
}

fn run_seed(seed: u64) -> Result<(), String> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let initial: Vec<Point> = (0..800)
        .map(|id| Point::new(xorshift(&mut s, 20_000), xorshift(&mut s, 20_000), id))
        .collect();
    let store = PageStore::in_memory(512);
    let mut pst = DynamicPst::build(&store, &initial).unwrap();
    let mut oracle: HashMap<u64, Point> = initial.iter().map(|p| (p.id, *p)).collect();
    let mut next_id = 100_000u64;
    for step in 0..1200u64 {
        if xorshift(&mut s, 3) < 2 {
            let p = Point::new(xorshift(&mut s, 20_000), xorshift(&mut s, 20_000), next_id);
            next_id += 1;
            pst.insert(&store, p).unwrap();
            oracle.insert(p.id, p);
        } else if !oracle.is_empty() {
            let mut keys: Vec<u64> = oracle.keys().copied().collect();
            keys.sort_unstable();
            let k = keys[(xorshift(&mut s, keys.len() as i64)) as usize];
            let p = oracle.remove(&k).unwrap();
            pst.delete(&store, p).unwrap();
        }
        if step % 50 == 0 || step > 1100 {
            let q = TwoSided { x0: 0, y0: 0 };
            let mut got: Vec<u64> =
                pst.query(&store, q).unwrap().iter().map(|p| p.id).collect();
            got.sort_unstable();
            got.dedup();
            let mut want: Vec<u64> = oracle.keys().copied().collect();
            want.sort_unstable();
            if got != want {
                let extra: Vec<u64> =
                    got.iter().filter(|i| !want.contains(i)).copied().collect();
                let missing: Vec<u64> =
                    want.iter().filter(|i| !got.contains(i)).copied().collect();
                if std::env::var("PC_DIAG").is_ok() {
                    for id in &extra {
                        let hits: Vec<&Point> = Vec::new();
                        let _ = hits;
                        let res = pst.query(&store, TwoSided { x0: 0, y0: 0 }).unwrap();
                        let copies: Vec<&Point> =
                            res.iter().filter(|p| p.id == *id).collect();
                        eprintln!("extra id {id}: copies in final results: {copies:?}");
                    }
                }
                return Err(format!(
                    "seed {seed} step {step}: extra={extra:?} missing={missing:?}"
                ));
            }
        }
    }
    Ok(())
}

/// Sweeps many deterministic workload seeds; any failure reproduces
/// standalone via `PC_SEED=<n>`. Seed 15 is the regression seed for the
/// x-tie routing bug (a split shared its x with a point, sending the
/// delete trickle down the wrong branch).
#[test]
fn dynamic_stress_seed_sweep() {
    let mut failures = Vec::new();
    let range: Vec<u64> = match std::env::var("PC_SEED") {
        Ok(v) => vec![v.parse().unwrap()],
        Err(_) => (0..25).collect(),
    };
    for seed in range {
        if let Err(e) = run_seed(seed) {
            failures.push(e);
        }
    }
    assert!(failures.is_empty(), "{failures:?}");
}
