//! Randomized differential test: the two-level PST against a brute-force
//! oracle, across data-set sizes spanning one region to many skeletal
//! pages.

use pc_pagestore::{PageStore, Point};
use pc_pst::{TwoLevelPst, TwoSided};

fn xorshift(state: &mut u64, bound: i64) -> i64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    (*state % bound as u64) as i64
}

#[test]
fn two_level_matches_oracle_across_sizes() {
    for n in [150usize, 250, 500, 1200, 2000] {
        let mut s = 0x2222u64 + n as u64;
        let pts: Vec<Point> = (0..n)
            .map(|id| Point::new(xorshift(&mut s, 1000), xorshift(&mut s, 1000), id as u64))
            .collect();
        let store = PageStore::in_memory(512);
        let pst = TwoLevelPst::build(&store, &pts).unwrap();
        let mut s = 0x55u64;
        for i in 0..200 {
            let q = TwoSided {
                x0: xorshift(&mut s, 1100) - 50,
                y0: xorshift(&mut s, 1100) - 50,
            };
            let raw = pst.query(&store, q).unwrap();
            let mut res: Vec<u64> = raw.iter().map(|p| p.id).collect();
            let n_res = res.len();
            res.sort_unstable();
            res.dedup();
            assert_eq!(n_res, res.len(), "duplicates at n={n} q{i} {q:?}");
            let mut want: Vec<u64> =
                pts.iter().filter(|p| q.contains(p)).map(|p| p.id).collect();
            want.sort_unstable();
            assert_eq!(res, want, "n={n} q{i} {q:?}");
        }
    }
}
