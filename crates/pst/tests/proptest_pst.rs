//! Property-based differential tests for the PST family, complementing
//! the xorshift-based unit tests with shrinkable seeded inputs on the
//! in-tree `pc_rng::check` harness.

use std::collections::HashMap;

use pc_rng::check::{check, no_shrink, shrink_vec, Config};
use pc_rng::Rng;

use pc_pagestore::{PageStore, Point};
use pc_pst::{
    BasicPst, DynamicPst, MultilevelPst, NaivePst, SegmentedPst, ThreeSided, ThreeSidedPst,
    TwoLevelPst, TwoSided,
};

fn gen_points(rng: &mut Rng, max_n: usize, domain: i64) -> Vec<Point> {
    let n = rng.gen_range(1usize..max_n);
    (0..n)
        .map(|i| Point::new(rng.gen_range(0..domain), rng.gen_range(0..domain), i as u64))
        .collect()
}

/// Shrinking points re-numbers ids so they stay dense and unique.
fn shrink_points(points: &[Point]) -> Vec<Vec<Point>> {
    shrink_vec(points, no_shrink)
        .into_iter()
        .filter(|v| !v.is_empty())
        .map(|v| {
            v.into_iter()
                .enumerate()
                .map(|(i, p)| Point::new(p.x, p.y, i as u64))
                .collect()
        })
        .collect()
}

fn brute_two(points: &[Point], q: TwoSided) -> Vec<u64> {
    let mut ids: Vec<u64> = points.iter().filter(|p| q.contains(p)).map(|p| p.id).collect();
    ids.sort_unstable();
    ids
}

fn sorted_ids(pts: Vec<Point>) -> Vec<u64> {
    let mut ids: Vec<u64> = pts.into_iter().map(|p| p.id).collect();
    ids.sort_unstable();
    ids
}

macro_rules! ensure_eq {
    ($a:expr, $b:expr, $($arg:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!("{}: {:?} != {:?}", format_args!($($arg)+), a, b));
        }
    }};
}

/// Every static 2-sided variant agrees with brute force (and each other)
/// on arbitrary inputs, including heavy coordinate ties (small domain
/// forces collisions).
#[test]
fn static_variants_agree() {
    let generate = |rng: &mut Rng| {
        let points = gen_points(rng, 300, 64);
        let n_q = rng.gen_range(1usize..12);
        let queries: Vec<(i64, i64)> =
            (0..n_q).map(|_| (rng.gen_range(-5i64..70), rng.gen_range(-5i64..70))).collect();
        (points, queries)
    };
    let shrink = |(points, queries): &(Vec<Point>, Vec<(i64, i64)>)| {
        shrink_points(points).into_iter().map(|p| (p, queries.clone())).collect::<Vec<_>>()
    };
    check(&Config::with_cases(24), generate, shrink, |(points, queries)| {
        let store = PageStore::in_memory(512);
        let naive = NaivePst::build(&store, points).unwrap();
        let basic = BasicPst::build(&store, points).unwrap();
        let seg = SegmentedPst::build(&store, points).unwrap();
        let two = TwoLevelPst::build(&store, points).unwrap();
        let multi = MultilevelPst::build(&store, points, 3).unwrap();
        for &(x0, y0) in queries {
            let q = TwoSided { x0, y0 };
            let want = brute_two(points, q);
            ensure_eq!(sorted_ids(naive.query(&store, q).unwrap()), want, "naive at {q:?}");
            ensure_eq!(sorted_ids(basic.query(&store, q).unwrap()), want, "basic at {q:?}");
            ensure_eq!(sorted_ids(seg.query(&store, q).unwrap()), want, "segmented at {q:?}");
            ensure_eq!(sorted_ids(two.query(&store, q).unwrap()), want, "two-level at {q:?}");
            ensure_eq!(sorted_ids(multi.query(&store, q).unwrap()), want, "3-level at {q:?}");
        }
        Ok(())
    });
}

/// 3-sided queries agree with brute force on tie-heavy inputs.
#[test]
fn three_sided_agrees() {
    let generate = |rng: &mut Rng| {
        let points = gen_points(rng, 300, 64);
        let n_q = rng.gen_range(1usize..12);
        let queries: Vec<(i64, i64, i64)> = (0..n_q)
            .map(|_| {
                (rng.gen_range(-5i64..70), rng.gen_range(0i64..40), rng.gen_range(-5i64..70))
            })
            .collect();
        (points, queries)
    };
    let shrink = |(points, queries): &(Vec<Point>, Vec<(i64, i64, i64)>)| {
        shrink_points(points).into_iter().map(|p| (p, queries.clone())).collect::<Vec<_>>()
    };
    check(&Config::with_cases(24), generate, shrink, |(points, queries)| {
        let store = PageStore::in_memory(512);
        let pst = ThreeSidedPst::build(&store, points).unwrap();
        for &(x1, w, y0) in queries {
            let q = ThreeSided { x1, x2: x1 + w, y0 };
            let mut want: Vec<u64> =
                points.iter().filter(|p| q.contains(p)).map(|p| p.id).collect();
            want.sort_unstable();
            let res = pst.query(&store, q).unwrap();
            ensure_eq!(res.len(), want.len(), "dups at {q:?}");
            ensure_eq!(sorted_ids(res), want, "results at {q:?}");
        }
        Ok(())
    });
}

/// The dynamic structure stays consistent with an oracle through an
/// arbitrary interleaving of inserts, deletes, and queries.
#[test]
fn dynamic_matches_oracle() {
    let generate = |rng: &mut Rng| {
        let initial = gen_points(rng, 150, 512);
        let n_ops = rng.gen_range(1usize..120);
        let ops: Vec<(u8, i64, i64)> = (0..n_ops)
            .map(|_| {
                (rng.gen_range(0u64..4) as u8, rng.gen_range(0i64..512), rng.gen_range(0i64..512))
            })
            .collect();
        (initial, ops)
    };
    type Case = (Vec<Point>, Vec<(u8, i64, i64)>);
    let shrink = |(initial, ops): &Case| {
        let mut out: Vec<Case> =
            shrink_points(initial).into_iter().map(|p| (p, ops.clone())).collect();
        out.extend(shrink_vec(ops, no_shrink).into_iter().map(|o| (initial.clone(), o)));
        out
    };
    check(&Config::with_cases(24), generate, shrink, |(initial, ops)| {
        let store = PageStore::in_memory(512);
        let mut pst = DynamicPst::build(&store, initial).unwrap();
        let mut oracle: HashMap<u64, Point> = initial.iter().map(|p| (p.id, *p)).collect();
        let mut next_id = 1_000_000u64;
        for &(kind, a, b) in ops {
            match kind {
                // Insert a fresh point.
                0 | 1 => {
                    let p = Point::new(a, b, next_id);
                    next_id += 1;
                    pst.insert(&store, p).unwrap();
                    oracle.insert(p.id, p);
                }
                // Delete some live point chosen by rank.
                2 => {
                    if oracle.is_empty() {
                        continue;
                    }
                    let mut keys: Vec<u64> = oracle.keys().copied().collect();
                    keys.sort_unstable();
                    let k = keys[(a.unsigned_abs() as usize) % keys.len()];
                    let p = oracle.remove(&k).unwrap();
                    pst.delete(&store, p).unwrap();
                }
                // Query.
                _ => {
                    let q = TwoSided { x0: a, y0: b };
                    let got = sorted_ids(pst.query(&store, q).unwrap());
                    let mut want: Vec<u64> =
                        oracle.values().filter(|p| q.contains(p)).map(|p| p.id).collect();
                    want.sort_unstable();
                    ensure_eq!(got, want, "query {q:?}");
                }
            }
            ensure_eq!(pst.len(), oracle.len() as u64, "len after op ({kind}, {a}, {b})");
        }
        // Closing full-range query.
        let q = TwoSided { x0: i64::MIN / 2, y0: i64::MIN / 2 };
        let got = sorted_ids(pst.query(&store, q).unwrap());
        let mut want: Vec<u64> = oracle.keys().copied().collect();
        want.sort_unstable();
        ensure_eq!(got, want, "closing full-range query");
        Ok(())
    });
}
