//! Property-based differential tests for the PST family, complementing
//! the xorshift-based unit tests with shrinkable proptest inputs.

use std::collections::HashMap;

use proptest::prelude::*;

use pc_pagestore::{PageStore, Point};
use pc_pst::{
    BasicPst, DynamicPst, MultilevelPst, NaivePst, SegmentedPst, ThreeSided, ThreeSidedPst,
    TwoLevelPst, TwoSided,
};

fn points_strategy(max_n: usize, domain: i64) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((0..domain, 0..domain), 1..max_n).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (x, y))| Point::new(x, y, i as u64))
            .collect()
    })
}

fn brute_two(points: &[Point], q: TwoSided) -> Vec<u64> {
    let mut ids: Vec<u64> = points.iter().filter(|p| q.contains(p)).map(|p| p.id).collect();
    ids.sort_unstable();
    ids
}

fn sorted_ids(pts: Vec<Point>) -> Vec<u64> {
    let mut ids: Vec<u64> = pts.into_iter().map(|p| p.id).collect();
    ids.sort_unstable();
    ids
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every static 2-sided variant agrees with brute force (and each
    /// other) on arbitrary inputs, including heavy coordinate ties (small
    /// domain forces collisions).
    #[test]
    fn static_variants_agree(
        points in points_strategy(300, 64),
        queries in prop::collection::vec((-5i64..70, -5i64..70), 1..12),
    ) {
        let store = PageStore::in_memory(512);
        let naive = NaivePst::build(&store, &points).unwrap();
        let basic = BasicPst::build(&store, &points).unwrap();
        let seg = SegmentedPst::build(&store, &points).unwrap();
        let two = TwoLevelPst::build(&store, &points).unwrap();
        let multi = MultilevelPst::build(&store, &points, 3).unwrap();
        for (x0, y0) in queries {
            let q = TwoSided { x0, y0 };
            let want = brute_two(&points, q);
            prop_assert_eq!(sorted_ids(naive.query(&store, q).unwrap()), want.clone());
            prop_assert_eq!(sorted_ids(basic.query(&store, q).unwrap()), want.clone());
            prop_assert_eq!(sorted_ids(seg.query(&store, q).unwrap()), want.clone());
            prop_assert_eq!(sorted_ids(two.query(&store, q).unwrap()), want.clone());
            prop_assert_eq!(sorted_ids(multi.query(&store, q).unwrap()), want);
        }
    }

    /// 3-sided queries agree with brute force on tie-heavy inputs.
    #[test]
    fn three_sided_agrees(
        points in points_strategy(300, 64),
        queries in prop::collection::vec((-5i64..70, 0i64..40, -5i64..70), 1..12),
    ) {
        let store = PageStore::in_memory(512);
        let pst = ThreeSidedPst::build(&store, &points).unwrap();
        for (x1, w, y0) in queries {
            let q = ThreeSided { x1, x2: x1 + w, y0 };
            let mut want: Vec<u64> =
                points.iter().filter(|p| q.contains(p)).map(|p| p.id).collect();
            want.sort_unstable();
            let res = pst.query(&store, q).unwrap();
            prop_assert_eq!(res.len(), want.len(), "dups at {:?}", q);
            prop_assert_eq!(sorted_ids(res), want);
        }
    }

    /// The dynamic structure stays consistent with an oracle through an
    /// arbitrary interleaving of inserts, deletes, and queries.
    #[test]
    fn dynamic_matches_oracle(
        initial in points_strategy(150, 512),
        ops in prop::collection::vec((0u8..4, 0i64..512, 0i64..512), 1..120),
    ) {
        let store = PageStore::in_memory(512);
        let mut pst = DynamicPst::build(&store, &initial).unwrap();
        let mut oracle: HashMap<u64, Point> = initial.iter().map(|p| (p.id, *p)).collect();
        let mut next_id = 1_000_000u64;
        for (kind, a, b) in ops {
            match kind {
                // Insert a fresh point.
                0 | 1 => {
                    let p = Point::new(a, b, next_id);
                    next_id += 1;
                    pst.insert(&store, p).unwrap();
                    oracle.insert(p.id, p);
                }
                // Delete some live point chosen by rank.
                2 => {
                    if oracle.is_empty() {
                        continue;
                    }
                    let mut keys: Vec<u64> = oracle.keys().copied().collect();
                    keys.sort_unstable();
                    let k = keys[(a.unsigned_abs() as usize) % keys.len()];
                    let p = oracle.remove(&k).unwrap();
                    pst.delete(&store, p).unwrap();
                }
                // Query.
                _ => {
                    let q = TwoSided { x0: a, y0: b };
                    let got = sorted_ids(pst.query(&store, q).unwrap());
                    let mut want: Vec<u64> =
                        oracle.values().filter(|p| q.contains(p)).map(|p| p.id).collect();
                    want.sort_unstable();
                    prop_assert_eq!(got, want, "{:?}", q);
                }
            }
            prop_assert_eq!(pst.len(), oracle.len() as u64);
        }
        // Closing full-range query.
        let q = TwoSided { x0: i64::MIN / 2, y0: i64::MIN / 2 };
        let got = sorted_ids(pst.query(&store, q).unwrap());
        let mut want: Vec<u64> = oracle.keys().copied().collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
}
