//! In-memory heap-of-regions decomposition and key orders.
//!
//! Every external PST variant starts from this structure: a binary tree in
//! which each node owns the top `cap` points of its x-range by `y`-order,
//! with the remainder split at the median `x`.

use std::cmp::Ordering;

use pc_pagestore::Point;

/// Strict x-order key comparison: `(x, y, id)` lexicographic.
pub fn cmp_x(a: &Point, b: &Point) -> Ordering {
    (a.x, a.y, a.id).cmp(&(b.x, b.y, b.id))
}

/// Strict y-order key comparison: `(y, x, id)` lexicographic.
pub fn cmp_y(a: &Point, b: &Point) -> Ordering {
    (a.y, a.x, a.id).cmp(&(b.y, b.x, b.id))
}

/// A 2-sided dominance query: report points with `x >= x0 && y >= y0`
/// (Figure 1, in the orientation of the §3 algorithm).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwoSided {
    /// Left boundary (inclusive).
    pub x0: i64,
    /// Bottom boundary (inclusive).
    pub y0: i64,
}

impl TwoSided {
    /// True if `p` lies in the query region.
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.x0 && p.y >= self.y0
    }
}

/// Sentinel child index.
pub const NONE: usize = usize::MAX;

/// One region of the decomposition.
#[derive(Debug)]
pub struct MemPstNode {
    /// The node's points, sorted descending by y-key. At most `cap`; nodes
    /// with children hold exactly `cap`.
    pub points: Vec<Point>,
    /// Maximum x-key point of the left subtree's x-range (routing key);
    /// meaningless for leaves.
    pub split: Point,
    /// Left child (x-keys `<= split`), or [`NONE`].
    pub left: usize,
    /// Right child, or [`NONE`].
    pub right: usize,
    /// Total points in this subtree (for rebalancing bookkeeping).
    pub subtree_size: u64,
}

impl MemPstNode {
    /// True if the node has no children.
    pub fn is_leaf(&self) -> bool {
        self.left == NONE
    }

}

/// Arena-allocated in-memory PST.
pub struct MemPst {
    /// Node arena; index 0 is the root.
    pub nodes: Vec<MemPstNode>,
    /// Region capacity used for the decomposition.
    pub cap: usize,
}

impl MemPst {
    /// Builds the decomposition with regions of `cap` points.
    ///
    /// `cap` is the paper's `B` for the basic scheme and `B log B` for the
    /// top level of the two-level scheme.
    pub fn build(points: &[Point], cap: usize) -> MemPst {
        assert!(cap >= 1);
        let mut sorted_x = points.to_vec();
        sorted_x.sort_unstable_by(cmp_x);
        let mut pst = MemPst { nodes: Vec::new(), cap };
        pst.build_subtree(sorted_x);
        pst
    }

    /// Recursively builds the subtree over `pts` (sorted by x-key),
    /// returning its arena index.
    fn build_subtree(&mut self, mut pts: Vec<Point>) -> usize {
        let idx = self.nodes.len();
        let subtree_size = pts.len() as u64;
        self.nodes.push(MemPstNode {
            points: Vec::new(),
            split: Point::new(0, 0, 0),
            left: NONE,
            right: NONE,
            subtree_size,
        });
        if pts.len() <= self.cap {
            pts.sort_unstable_by(|a, b| cmp_y(b, a));
            self.nodes[idx].points = pts;
            return idx;
        }
        // Select the top `cap` points by y-key.
        let mut order: Vec<usize> = (0..pts.len()).collect();
        order.sort_unstable_by(|&a, &b| cmp_y(&pts[b], &pts[a]));
        let mut chosen = vec![false; pts.len()];
        for &i in order.iter().take(self.cap) {
            chosen[i] = true;
        }
        let mut top: Vec<Point> = order[..self.cap].iter().map(|&i| pts[i]).collect();
        // `top` is already sorted descending by y-key.
        let rest: Vec<Point> =
            pts.drain(..).enumerate().filter(|(i, _)| !chosen[*i]).map(|(_, p)| p).collect();
        // `rest` stays sorted by x-key (drain preserves order).
        // At least one point per side where possible; a remainder of one
        // point yields an empty right leaf, which queries handle.
        let mid = (rest.len() / 2).max(1);
        let split = rest[mid - 1];
        let left_pts = rest[..mid].to_vec();
        let right_pts = rest[mid..].to_vec();
        top.shrink_to_fit();
        self.nodes[idx].points = top;
        self.nodes[idx].split = split;
        let left = self.build_subtree(left_pts);
        let right = self.build_subtree(right_pts);
        self.nodes[idx].left = left;
        self.nodes[idx].right = right;
        idx
    }

    /// In-memory oracle for 2-sided queries (used by tests).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn query_oracle(&self, q: TwoSided) -> Vec<Point> {
        let mut out = Vec::new();
        let mut stack = vec![0usize];
        while let Some(idx) = stack.pop() {
            let node = &self.nodes[idx];
            if node.subtree_size == 0 {
                continue;
            }
            out.extend(node.points.iter().filter(|p| q.contains(p)).copied());
            if !node.is_leaf() {
                // Children's points are strictly y-below this node's lowest
                // point, so they can only qualify if that lowest point is
                // itself at or above y0.
                let min = node.points.last().expect("internal nodes are full");
                if min.y >= q.y0 {
                    // Left subtree holds x-keys <= split: prune when even
                    // the split is left of the query.
                    if cmp_x(&node.split, &Point::new(q.x0, i64::MIN, u64::MIN))
                        != Ordering::Less
                    {
                        stack.push(node.left);
                    }
                    stack.push(node.right);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute(points: &[Point], q: TwoSided) -> Vec<u64> {
        let mut ids: Vec<u64> =
            points.iter().filter(|p| q.contains(p)).map(|p| p.id).collect();
        ids.sort_unstable();
        ids
    }

    fn xorshift(state: &mut u64, bound: i64) -> i64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        (*state % bound as u64) as i64
    }

    fn random_points(n: usize, domain: i64, seed: u64) -> Vec<Point> {
        let mut s = seed;
        (0..n)
            .map(|id| Point::new(xorshift(&mut s, domain), xorshift(&mut s, domain), id as u64))
            .collect()
    }

    #[test]
    fn heap_property_holds() {
        let pts = random_points(1000, 500, 1);
        let pst = MemPst::build(&pts, 16);
        // Every child point must be y-below its parent's minimum.
        for (i, node) in pst.nodes.iter().enumerate() {
            if node.is_leaf() {
                continue;
            }
            assert_eq!(node.points.len(), 16, "internal node {i} must be full");
            let min = node.points.last().unwrap();
            for &c in &[node.left, node.right] {
                for p in &pst.nodes[c].points {
                    assert_eq!(cmp_y(p, min), Ordering::Less, "heap violated at {i}");
                }
            }
        }
    }

    #[test]
    fn x_division_is_clean() {
        let pts = random_points(1000, 500, 2);
        let pst = MemPst::build(&pts, 16);
        for node in &pst.nodes {
            if node.is_leaf() {
                continue;
            }
            for p in &pst.nodes[node.left].points {
                assert_ne!(cmp_x(p, &node.split), Ordering::Greater);
            }
            for p in &pst.nodes[node.right].points {
                assert_eq!(cmp_x(p, &node.split), Ordering::Greater);
            }
        }
    }

    #[test]
    fn node_points_sorted_descending_y() {
        let pts = random_points(500, 300, 3);
        let pst = MemPst::build(&pts, 8);
        for node in &pst.nodes {
            for w in node.points.windows(2) {
                assert_eq!(cmp_y(&w[0], &w[1]), Ordering::Greater);
            }
        }
    }

    #[test]
    fn all_points_stored_exactly_once() {
        let pts = random_points(777, 400, 4);
        let pst = MemPst::build(&pts, 10);
        let mut ids: Vec<u64> =
            pst.nodes.iter().flat_map(|n| n.points.iter().map(|p| p.id)).collect();
        ids.sort_unstable();
        let want: Vec<u64> = (0..777).collect();
        assert_eq!(ids, want);
    }

    #[test]
    fn oracle_matches_brute_force() {
        let pts = random_points(800, 300, 5);
        let pst = MemPst::build(&pts, 8);
        let mut s = 0x8888u64;
        for _ in 0..100 {
            let q = TwoSided { x0: xorshift(&mut s, 350) - 20, y0: xorshift(&mut s, 350) - 20 };
            let mut got: Vec<u64> = pst.query_oracle(q).iter().map(|p| p.id).collect();
            got.sort_unstable();
            assert_eq!(got, brute(&pts, q), "{q:?}");
        }
    }

    #[test]
    fn duplicate_coordinates_are_exact() {
        // Many points sharing the same x and y exercise the strict-order
        // tie-breaking.
        let pts: Vec<Point> = (0..200).map(|i| Point::new(5, 7, i)).collect();
        let pst = MemPst::build(&pts, 4);
        for (q, want) in [
            (TwoSided { x0: 5, y0: 7 }, 200),
            (TwoSided { x0: 6, y0: 7 }, 0),
            (TwoSided { x0: 5, y0: 8 }, 0),
            (TwoSided { x0: 0, y0: 0 }, 200),
        ] {
            assert_eq!(pst.query_oracle(q).len(), want, "{q:?}");
        }
    }
}
