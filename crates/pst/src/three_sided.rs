//! 3-sided queries: `x1 <= x <= x2 && y >= y0` (Theorem 3.3; the static
//! core reused by Theorem 5.2).
//!
//! ## Query anatomy
//!
//! The two vertical boundaries trace two root paths that share a prefix up
//! to the **split node** (the deepest region whose x-range contains both
//! boundaries). Below the split, the left path is a 2-sided problem cut by
//! `x = x1` (everything right of it is `<= x2` automatically) and the
//! right path is its mirror; between them lie fully-contained subtrees.
//! On the shared prefix, a node's qualifying points form a *middle run*
//! `[x1, x2]` of its x-order — not a prefix — which is what costs the
//! extra machinery relative to Theorem 3.2.
//!
//! ## Our instantiation of the Thm 3.3 space/time trade
//!
//! The extended abstract defers the construction; we realize it as:
//!
//! * **Mirrored A-lists with directories.** Every node carries its
//!   in-segment ancestors' points twice: descending x (for the left path)
//!   and ascending x (for the right path). Each list has a one-block
//!   *directory* mapping block → (boundary x, page id), so a query jumps
//!   straight to the start of its qualifying run in one I/O — this is how
//!   shared-prefix ancestors are handled without scanning their
//!   out-of-range prefix.
//! * **Threshold-indexed S-lists.** A sibling of a *shared* node lies
//!   wholly outside the query band, so the S-cache must exclude ancestors
//!   above the split. We store one S-list per possible in-page split depth
//!   `j` (`S_j` = right siblings of in-page ancestors at in-page depth
//!   `>= j`, descending y) and the mirrored `S'_j` for left siblings.
//!   This family of up to `h` lists per node, each up to `h` blocks, is
//!   exactly the paper's extra `log B` space factor: total space
//!   `O((n/B)·log² B)`.
//!
//! Queries read, per skeletal page on each path: one A-directory, the run
//! blocks (all answers but ≤ 2 partials), one S-directory page, one `S_j`
//! prefix, and the exit's own block — `O(1)` overhead per segment, hence
//! `O(log_B n + t/B)` total.

use std::collections::HashMap;

use pc_pagestore::codec::{PageReader, PageWriter};
use pc_pagestore::layout::BlockList;
use pc_pagestore::{Page, PageId, PageStore, Point, Record, Result, NULL_PAGE};

use crate::build::{paginate, points_capacity, read_points_page, write_points_pages, NodeRef, SEntry};
use crate::mem::{cmp_x, cmp_y, MemPst, NONE};
use crate::query::{traverse_descendants, QueryCounters};

/// A 3-sided query: report points with `x1 <= x <= x2 && y >= y0`
/// (Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreeSided {
    /// Left boundary (inclusive).
    pub x1: i64,
    /// Right boundary (inclusive).
    pub x2: i64,
    /// Bottom boundary (inclusive).
    pub y0: i64,
}

impl ThreeSided {
    /// True if `p` lies in the query region.
    pub fn contains(&self, p: &Point) -> bool {
        self.x1 <= p.x && p.x <= self.x2 && p.y >= self.y0
    }
}

/// Byte size of one 3-sided skeletal record.
pub const RECORD_LEN: usize = 24 + 24 + 10 + 10 + 8 + 2 + 10 + 10 + 16 + 8 + 16 + 8 + 8;
const PAGE_HEADER: usize = 2;

/// Records per skeletal page.
pub fn skeletal_capacity(page_size: usize) -> usize {
    let cap = (page_size - PAGE_HEADER) / RECORD_LEN;
    assert!(cap >= 3, "page size {page_size} too small for a 3-sided PST page");
    cap
}

#[derive(Debug, Clone)]
struct TsRecord {
    split: Point,
    min_y: Point,
    left: NodeRef,
    right: NodeRef,
    own_pts: PageId,
    own_cnt: u16,
    left_pts: PageId,
    left_cnt: u16,
    right_pts: PageId,
    right_cnt: u16,
    a_desc: BlockList<SEntry>,
    a_desc_dir: PageId,
    a_asc: BlockList<SEntry>,
    a_asc_dir: PageId,
    s_dir: PageId,
}

fn decode_record(page: &[u8], slot: u16) -> Result<TsRecord> {
    let offset = PAGE_HEADER + RECORD_LEN * slot as usize;
    let mut r = PageReader::new(&page[offset..offset + RECORD_LEN]);
    Ok(TsRecord {
        split: Point::decode(&mut r)?,
        min_y: Point::decode(&mut r)?,
        left: NodeRef { page: PageId(r.get_u64()?), slot: r.get_u16()? },
        right: NodeRef { page: PageId(r.get_u64()?), slot: r.get_u16()? },
        own_pts: PageId(r.get_u64()?),
        own_cnt: r.get_u16()?,
        left_pts: PageId(r.get_u64()?),
        left_cnt: r.get_u16()?,
        right_pts: PageId(r.get_u64()?),
        right_cnt: r.get_u16()?,
        a_desc: BlockList::decode(&mut r)?,
        a_desc_dir: PageId(r.get_u64()?),
        a_asc: BlockList::decode(&mut r)?,
        a_asc_dir: PageId(r.get_u64()?),
        s_dir: PageId(r.get_u64()?),
    })
}

/// Writes a list directory: `[count u16][(boundary_x i64, page u64) *]`,
/// where `boundary_x` is the x of the block's **last** entry.
fn write_directory(
    store: &PageStore,
    list: &BlockList<SEntry>,
    entries: &[SEntry],
) -> Result<PageId> {
    if list.is_empty() {
        return Ok(NULL_PAGE);
    }
    let pages = list.block_pages(store)?;
    let cap = BlockList::<SEntry>::capacity(store.page_size());
    let id = store.alloc()?;
    let mut buf = vec![0u8; store.page_size()];
    let used = {
        let mut w = PageWriter::new(&mut buf);
        w.put_u16(pages.len() as u16)?;
        for (j, pid) in pages.iter().enumerate() {
            let last_idx = ((j + 1) * cap - 1).min(entries.len() - 1);
            w.put_i64(entries[last_idx].p.x)?;
            w.put_u64(pid.0)?;
        }
        w.position()
    };
    store.write(id, &buf[..used])?;
    Ok(id)
}

fn read_directory(store: &PageStore, id: PageId) -> Result<Vec<(i64, PageId)>> {
    let page = store.read(id)?;
    let mut r = PageReader::new(&page);
    let count = r.get_u16()? as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let x = r.get_i64()?;
        let pid = PageId(r.get_u64()?);
        out.push((x, pid));
    }
    Ok(out)
}

/// External PST for 3-sided queries: `O(log_B n + t/B)` I/Os,
/// `O((n/B)·log² B)` blocks (Theorem 3.3).
pub struct ThreeSidedPst {
    root_page: PageId,
    n: u64,
}

impl ThreeSidedPst {
    /// Builds the structure over `points`.
    pub fn build(store: &PageStore, points: &[Point]) -> Result<Self> {
        let page_size = store.page_size();
        let mem = MemPst::build(points, points_capacity(page_size));
        let pts_ids = write_points_pages(store, &mem)?;
        let (pages, node_loc) = paginate(&mem, skeletal_capacity(page_size));
        let page_ids: Vec<PageId> =
            pages.iter().map(|_| store.alloc()).collect::<Result<_>>()?;

        let n_nodes = mem.nodes.len();
        let mut a_desc = vec![BlockList::empty(); n_nodes];
        let mut a_desc_dir = vec![NULL_PAGE; n_nodes];
        let mut a_asc = vec![BlockList::empty(); n_nodes];
        let mut a_asc_dir = vec![NULL_PAGE; n_nodes];
        let mut s_dir = vec![NULL_PAGE; n_nodes];

        // DFS with in-page chains: (arena idx, abs depth, in-page depth,
        // went_left).
        struct Frame {
            node: usize,
            depth: u16,
            chain: Vec<(usize, u16, u16, bool)>,
        }
        let mut stack = vec![Frame { node: 0, depth: 0, chain: Vec::new() }];
        let mut buf = vec![0u8; page_size];
        while let Some(Frame { node, depth, chain }) = stack.pop() {
            // A-lists: every in-page strict ancestor's points, both
            // orders, tagged with the ancestor's in-page depth so boundary
            // walks can skip shared ancestors already reported by the
            // shared phase.
            let mut a: Vec<SEntry> = Vec::new();
            for &(anc, _, inpage_depth, _) in &chain {
                a.extend(
                    mem.nodes[anc].points.iter().map(|&p| SEntry { p, depth: inpage_depth }),
                );
            }
            a.sort_unstable_by(|p, q| cmp_x(&q.p, &p.p));
            a_desc[node] = BlockList::build(store, &a)?;
            a_desc_dir[node] = write_directory(store, &a_desc[node], &a)?;
            a.reverse();
            a_asc[node] = BlockList::build(store, &a)?;
            a_asc_dir[node] = write_directory(store, &a_asc[node], &a)?;

            // Threshold-indexed S-families.
            if !chain.is_empty() {
                let max_j = chain.len(); // == in-page depth of `node`
                let mut handles: Vec<(BlockList<SEntry>, BlockList<SEntry>)> =
                    Vec::with_capacity(max_j);
                for j in 0..max_j as u16 {
                    let mut right_sibs: Vec<SEntry> = Vec::new();
                    let mut left_sibs: Vec<SEntry> = Vec::new();
                    for &(anc, _abs_depth, inpage_depth, went_left) in &chain {
                        if inpage_depth < j {
                            continue;
                        }
                        // Tag with the *in-page* depth: within one page the
                        // chain is a path, so in-page depth uniquely names
                        // the ancestor, and the query walk can reconstruct
                        // it without knowing absolute depths.
                        if went_left {
                            let sib = mem.nodes[anc].right;
                            right_sibs.extend(
                                mem.nodes[sib]
                                    .points
                                    .iter()
                                    .map(|&p| SEntry { p, depth: inpage_depth }),
                            );
                        } else {
                            let sib = mem.nodes[anc].left;
                            left_sibs.extend(
                                mem.nodes[sib]
                                    .points
                                    .iter()
                                    .map(|&p| SEntry { p, depth: inpage_depth }),
                            );
                        }
                    }
                    right_sibs.sort_unstable_by(|x, y| cmp_y(&y.p, &x.p));
                    left_sibs.sort_unstable_by(|x, y| cmp_y(&y.p, &x.p));
                    handles.push((
                        BlockList::build(store, &right_sibs)?,
                        BlockList::build(store, &left_sibs)?,
                    ));
                }
                let id = store.alloc()?;
                let used = {
                    let mut w = PageWriter::new(&mut buf);
                    w.put_u16(handles.len() as u16)?;
                    for (right_sibs, left_sibs) in &handles {
                        right_sibs.encode(&mut w)?;
                        left_sibs.encode(&mut w)?;
                    }
                    w.position()
                };
                store.write(id, &buf[..used])?;
                s_dir[node] = id;
            }

            let mn = &mem.nodes[node];
            if mn.left != NONE {
                for (child, went_left) in [(mn.left, true), (mn.right, false)] {
                    let same_page = node_loc[child].0 == node_loc[node].0;
                    let chain = if same_page {
                        let mut c = chain.clone();
                        c.push((node, depth, c.len() as u16, went_left));
                        c
                    } else {
                        Vec::new()
                    };
                    stack.push(Frame { node: child, depth: depth + 1, chain });
                }
            }
        }

        // Serialize skeletal pages.
        for (page_idx, members) in pages.iter().enumerate() {
            let used = {
                let mut w = PageWriter::new(&mut buf);
                w.put_u16(members.len() as u16)?;
                for &ni in members {
                    let node = &mem.nodes[ni];
                    node.split.encode(&mut w)?;
                    node.points
                        .last()
                        .copied()
                        .unwrap_or(Point::new(0, 0, 0))
                        .encode(&mut w)?;
                    if node.is_leaf() {
                        for _ in 0..2 {
                            w.put_u64(NULL_PAGE.0)?;
                            w.put_u16(0)?;
                        }
                    } else {
                        for child in [node.left, node.right] {
                            let (p, s) = node_loc[child];
                            w.put_u64(page_ids[p].0)?;
                            w.put_u16(s)?;
                        }
                    }
                    w.put_u64(pts_ids[ni].0)?;
                    w.put_u16(node.points.len() as u16)?;
                    if node.is_leaf() {
                        for _ in 0..2 {
                            w.put_u64(NULL_PAGE.0)?;
                            w.put_u16(0)?;
                        }
                    } else {
                        w.put_u64(pts_ids[node.left].0)?;
                        w.put_u16(mem.nodes[node.left].points.len() as u16)?;
                        w.put_u64(pts_ids[node.right].0)?;
                        w.put_u16(mem.nodes[node.right].points.len() as u16)?;
                    }
                    a_desc[ni].encode(&mut w)?;
                    w.put_u64(a_desc_dir[ni].0)?;
                    a_asc[ni].encode(&mut w)?;
                    w.put_u64(a_asc_dir[ni].0)?;
                    w.put_u64(s_dir[ni].0)?;
                }
                w.position()
            };
            store.write(page_ids[page_idx], &buf[..used])?;
        }

        Ok(ThreeSidedPst { root_page: page_ids[0], n: points.len() as u64 })
    }

    /// Number of indexed points.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// True when no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Answers a 3-sided query.
    pub fn query(&self, store: &PageStore, q: ThreeSided) -> Result<Vec<Point>> {
        Ok(self.query_counted(store, q)?.0)
    }

    /// Answers a 3-sided query with I/O counters.
    pub fn query_counted(
        &self,
        store: &PageStore,
        q: ThreeSided,
    ) -> Result<(Vec<Point>, QueryCounters)> {
        assert!(q.x1 <= q.x2, "3-sided query bounds out of order");
        let _span = pc_obs::span!("pst3_query");
        pc_obs::set_block_capacity(points_capacity(store.page_size()) as u64);
        let mut ctx = TsCtx {
            store,
            q,
            cap: points_capacity(store.page_size()) as u16,
            results: Vec::new(),
            counters: QueryCounters::default(),
        };

        // --- Shared prefix -------------------------------------------------
        let mut cur_page_id = self.root_page;
        let mut page = {
            let _lvl = pc_obs::span!("level", 0u64);
            store.read(cur_page_id)?
        };
        ctx.counters.skeletal += 1;
        let mut slot = 0u16;
        let mut inpage_depth = 0u16;
        loop {
            let rec = decode_record(&page, slot)?;
            let is_leaf = rec.left.page.is_null();
            let is_corner = rec.own_cnt == 0 || rec.min_y.y < q.y0 || is_leaf;
            if is_corner {
                // Everything below fails the y bound; the shared prefix is
                // the whole relevant tree.
                ctx.middle_run_desc(&rec, 0)?;
                ctx.read_own(&rec, true)?;
                return Ok((ctx.results, ctx.counters));
            }
            // Routing keys: qx1 = (x1, -inf, -inf), qx2 = (x2, +inf, +inf).
            let left1 = q.x1 <= rec.split.x;
            let left2 = q.x2 < rec.split.x;
            if left1 != left2 {
                // Split node: middle-filter it and its covered ancestors,
                // then walk each boundary independently.
                ctx.middle_run_desc(&rec, 0)?;
                ctx.read_own(&rec, false)?;
                let thr_left = inpage_threshold(rec.left.page, cur_page_id, inpage_depth);
                let thr_right = inpage_threshold(rec.right.page, cur_page_id, inpage_depth);
                ctx.boundary_walk::<true>(rec.left, thr_left, cur_page_id, &page)?;
                ctx.boundary_walk::<false>(rec.right, thr_right, cur_page_id, &page)?;
                return Ok((ctx.results, ctx.counters));
            }
            let next = if left1 { rec.left } else { rec.right };
            if next.page != cur_page_id {
                // Shared-segment exit: middle contributions for this page.
                ctx.middle_run_desc(&rec, 0)?;
                ctx.read_own(&rec, false)?;
                cur_page_id = next.page;
                page = {
                    let _lvl = pc_obs::span!("level", ctx.counters.skeletal);
                    store.read(cur_page_id)?
                };
                ctx.counters.skeletal += 1;
                inpage_depth = 0;
            } else {
                inpage_depth += 1;
            }
            slot = next.slot;
        }
    }
}

/// Threshold for the child's S-family: if the child stays in the split's
/// page, ancestors at in-page depth <= the split's must be excluded.
fn inpage_threshold(child_page: PageId, split_page: PageId, split_inpage_depth: u16) -> u16 {
    if child_page == split_page {
        split_inpage_depth + 1
    } else {
        0
    }
}

struct TsCtx<'a> {
    store: &'a PageStore,
    q: ThreeSided,
    cap: u16,
    results: Vec<Point>,
    counters: QueryCounters,
}

impl TsCtx<'_> {
    /// Reads a node's own block, filtering with the full predicate.
    ///
    /// `output_scan` marks the corner's block (output-amortized); the
    /// per-segment exit and split-node reads are fixed search overhead.
    fn read_own(&mut self, rec: &TsRecord, output_scan: bool) -> Result<()> {
        if rec.own_cnt == 0 {
            return Ok(());
        }
        let _scan = if output_scan {
            pc_obs::span!(output: "node_block")
        } else {
            pc_obs::span!("node_block")
        };
        let before = self.results.len();
        let pp = read_points_page(self.store, rec.own_pts)?;
        self.counters.node_blocks += 1;
        self.results.extend(pp.points.iter().filter(|p| self.q.contains(p)));
        pc_obs::add_items((self.results.len() - before) as u64);
        Ok(())
    }

    /// Middle-run scan of the descending A-list: directory-jump to the
    /// first block containing `x <= x2`, then scan while `x >= x1`,
    /// filtering the transition block. Entries from ancestors at in-page
    /// depth `< min_depth` (shared prefix, already reported) are skipped.
    fn middle_run_desc(&mut self, rec: &TsRecord, min_depth: u16) -> Result<()> {
        if rec.a_desc.is_empty() {
            return Ok(());
        }
        // The directory jump is navigation I/O; only the run blocks are an
        // output scan.
        let dir = read_directory(self.store, rec.a_desc_dir)?;
        self.counters.cache_blocks += 1;
        // boundary_x is the block's smallest x (descending list): the first
        // block whose minimum is <= x2 can contain qualifying entries.
        let Some(start) = dir.iter().position(|&(bx, _)| bx <= self.q.x2) else {
            return Ok(());
        };
        let _probe = pc_obs::span!("path_cache_probe");
        pc_obs::set_block_capacity(BlockList::<SEntry>::capacity(self.store.page_size()) as u64);
        let before = self.results.len();
        let mut next = dir[start].1;
        'run: while !next.is_null() {
            let (entries, nxt) = BlockList::<SEntry>::read_block(self.store, next)?;
            self.counters.cache_blocks += 1;
            for e in entries {
                if e.p.x < self.q.x1 {
                    break 'run;
                }
                if e.p.x <= self.q.x2 && e.depth >= min_depth {
                    self.results.push(e.p);
                }
            }
            next = nxt;
        }
        pc_obs::add_items((self.results.len() - before) as u64);
        Ok(())
    }

    /// Middle-run scan of the ascending A-list (mirror of
    /// [`Self::middle_run_desc`]).
    fn middle_run_asc(&mut self, rec: &TsRecord, min_depth: u16) -> Result<()> {
        if rec.a_asc.is_empty() {
            return Ok(());
        }
        let dir = read_directory(self.store, rec.a_asc_dir)?;
        self.counters.cache_blocks += 1;
        // boundary_x is the block's largest x (ascending list).
        let Some(start) = dir.iter().position(|&(bx, _)| bx >= self.q.x1) else {
            return Ok(());
        };
        let _probe = pc_obs::span!("path_cache_probe");
        pc_obs::set_block_capacity(BlockList::<SEntry>::capacity(self.store.page_size()) as u64);
        let before = self.results.len();
        let mut next = dir[start].1;
        'run: while !next.is_null() {
            let (entries, nxt) = BlockList::<SEntry>::read_block(self.store, next)?;
            self.counters.cache_blocks += 1;
            for e in entries {
                if e.p.x > self.q.x2 {
                    break 'run;
                }
                if e.p.x >= self.q.x1 && e.depth >= min_depth {
                    self.results.push(e.p);
                }
            }
            next = nxt;
        }
        pc_obs::add_items((self.results.len() - before) as u64);
        Ok(())
    }

    /// Reads the S-family directory and drains `S_threshold`: a
    /// descending-y prefix with per-depth counts, then seeds descendant
    /// traversals for fully-inside siblings.
    fn drain_s<const LEFT: bool>(
        &mut self,
        rec: &TsRecord,
        threshold: u16,
        sib: &HashMap<u16, (PageId, u16)>,
    ) -> Result<()> {
        if rec.s_dir.is_null() {
            return Ok(());
        }
        let page = self.store.read(rec.s_dir)?;
        self.counters.cache_blocks += 1;
        let mut r = PageReader::new(&page);
        let count = r.get_u16()?;
        if threshold >= count {
            return Ok(());
        }
        // Entry j holds (S_j right-siblings, S'_j left-siblings).
        r.skip(threshold as usize * 2 * BlockList::<SEntry>::ENCODED_LEN)?;
        let right_sibs: BlockList<SEntry> = BlockList::decode(&mut r)?;
        let left_sibs: BlockList<SEntry> = BlockList::decode(&mut r)?;
        let list = if LEFT { right_sibs } else { left_sibs };

        let mut qualified: HashMap<u16, u16> = HashMap::new();
        {
            let _probe = pc_obs::span!("path_cache_probe");
            pc_obs::set_block_capacity(
                BlockList::<SEntry>::capacity(self.store.page_size()) as u64
            );
            let before = self.results.len();
            's_scan: for block in list.blocks(self.store) {
                self.counters.cache_blocks += 1;
                for e in block? {
                    if e.p.y < self.q.y0 {
                        break 's_scan;
                    }
                    self.results.push(e.p);
                    *qualified.entry(e.depth).or_insert(0) += 1;
                }
            }
            pc_obs::add_items((self.results.len() - before) as u64);
        }
        for (d, cnt) in qualified {
            let &(pts, total) = sib.get(&d).expect("S entries come from recorded siblings");
            if cnt == total && total == self.cap {
                traverse_descendants(
                    self.store,
                    pts,
                    false,
                    self.q.y0,
                    &mut self.results,
                    &mut self.counters,
                )?;
            }
        }
        Ok(())
    }

    /// Walks one boundary path below the split. `LEFT` walks the `x1`
    /// boundary (right siblings are inside the band); `!LEFT` mirrors it.
    fn boundary_walk<const LEFT: bool>(
        &mut self,
        start: NodeRef,
        mut threshold: u16,
        split_page_id: PageId,
        split_page: &Page,
    ) -> Result<()> {
        if start.page.is_null() {
            return Ok(());
        }
        let mut cur_page_id;
        let mut page;
        if start.page == split_page_id {
            cur_page_id = split_page_id;
            page = split_page.clone();
        } else {
            cur_page_id = start.page;
            page = {
                let _lvl = pc_obs::span!("level", self.counters.skeletal);
                self.store.read(cur_page_id)?
            };
            self.counters.skeletal += 1;
        }
        let mut slot = start.slot;
        // Sibling map keyed by *in-page* depth, matching the build-time S
        // tags. When the walk starts inside the split's page, its first
        // node sits at in-page depth `threshold` (= split depth + 1).
        let mut sib: HashMap<u16, (PageId, u16)> = HashMap::new();
        let mut inpage_depth = threshold;
        loop {
            let rec = decode_record(&page, slot)?;
            let is_leaf = rec.left.page.is_null();
            let is_corner = rec.own_cnt == 0 || rec.min_y.y < self.q.y0 || is_leaf;
            if is_corner {
                if LEFT {
                    self.middle_run_desc(&rec, threshold)?;
                } else {
                    self.middle_run_asc(&rec, threshold)?;
                }
                self.drain_s::<LEFT>(&rec, threshold, &sib)?;
                self.read_own(&rec, true)?;
                return Ok(());
            }
            // Route by this walk's boundary.
            let go_left = if LEFT { self.q.x1 <= rec.split.x } else { self.q.x2 < rec.split.x };
            // The inside sibling: right child on the left path when going
            // left; left child on the right path when going right.
            let inside_sib = if LEFT && go_left {
                (rec.right_cnt > 0).then_some((rec.right_pts, rec.right_cnt))
            } else if !LEFT && !go_left {
                (rec.left_cnt > 0).then_some((rec.left_pts, rec.left_cnt))
            } else {
                None
            };
            let next = if go_left { rec.left } else { rec.right };
            let crosses = next.page != cur_page_id;
            if crosses {
                if LEFT {
                    self.middle_run_desc(&rec, threshold)?;
                } else {
                    self.middle_run_asc(&rec, threshold)?;
                }
                self.drain_s::<LEFT>(&rec, threshold, &sib)?;
                self.read_own(&rec, false)?;
                // The exit's inside sibling belongs to no S-list below it.
                if let Some((pts, _)) = inside_sib {
                    traverse_descendants(
                        self.store,
                        pts,
                        true,
                        self.q.y0,
                        &mut self.results,
                        &mut self.counters,
                    )?;
                }
                sib.clear();
                threshold = 0;
                cur_page_id = next.page;
                page = {
                    let _lvl = pc_obs::span!("level", self.counters.skeletal);
                    self.store.read(cur_page_id)?
                };
                self.counters.skeletal += 1;
                inpage_depth = 0;
                slot = next.slot;
                continue;
            }
            if let Some(info) = inside_sib {
                sib.insert(inpage_depth, info);
            }
            slot = next.slot;
            inpage_depth += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(state: &mut u64, bound: i64) -> i64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        (*state % bound as u64) as i64
    }

    fn random_points(n: usize, domain: i64, seed: u64) -> Vec<Point> {
        let mut s = seed;
        (0..n)
            .map(|id| Point::new(xorshift(&mut s, domain), xorshift(&mut s, domain), id as u64))
            .collect()
    }

    fn brute(points: &[Point], q: ThreeSided) -> Vec<u64> {
        let mut ids: Vec<u64> =
            points.iter().filter(|p| q.contains(p)).map(|p| p.id).collect();
        ids.sort_unstable();
        ids
    }

    fn ids(mut pts: Vec<Point>) -> Vec<u64> {
        let mut out: Vec<u64> = pts.drain(..).map(|p| p.id).collect();
        out.sort_unstable();
        out
    }

    fn check(points: &[Point], queries: &[ThreeSided], page_size: usize) {
        let store = PageStore::in_memory(page_size);
        let pst = ThreeSidedPst::build(&store, points).unwrap();
        for (i, &q) in queries.iter().enumerate() {
            let res = pst.query(&store, q).unwrap();
            let want = brute(points, q);
            assert_eq!(res.len(), want.len(), "dup? q{i}={q:?}");
            assert_eq!(ids(res), want, "q{i}={q:?}");
        }
    }

    #[test]
    fn matches_brute_force_random() {
        let pts = random_points(4000, 10_000, 0x35);
        let mut s = 0x99u64;
        let queries: Vec<ThreeSided> = (0..150)
            .map(|_| {
                let a = xorshift(&mut s, 11_000) - 500;
                let b = a + xorshift(&mut s, 4_000);
                ThreeSided { x1: a, x2: b, y0: xorshift(&mut s, 11_000) - 500 }
            })
            .collect();
        check(&pts, &queries, 512);
    }

    #[test]
    fn narrow_and_degenerate_bands() {
        let pts = random_points(2000, 1000, 7);
        let mut queries = Vec::new();
        for x in [0i64, 100, 500, 999, 1000] {
            queries.push(ThreeSided { x1: x, x2: x, y0: 0 });
            queries.push(ThreeSided { x1: x, x2: x + 1, y0: 500 });
        }
        queries.push(ThreeSided { x1: -100, x2: 2000, y0: -5 }); // everything
        queries.push(ThreeSided { x1: 2000, x2: 3000, y0: 0 }); // nothing right
        queries.push(ThreeSided { x1: -50, x2: -10, y0: 0 }); // nothing left
        check(&pts, &queries, 512);
    }

    #[test]
    fn duplicate_coordinates() {
        let pts: Vec<Point> =
            (0..900).map(|i| Point::new((i % 5) as i64 * 10, (i % 9) as i64 * 10, i)).collect();
        let mut queries = Vec::new();
        for x1 in [-1i64, 0, 10, 20] {
            for x2 in [10i64, 20, 40, 41] {
                if x1 > x2 {
                    continue;
                }
                for y0 in [-1i64, 0, 40, 80, 81] {
                    queries.push(ThreeSided { x1, x2, y0 });
                }
            }
        }
        check(&pts, &queries, 512);
    }

    #[test]
    fn three_sided_reduces_to_two_sided_when_x2_unbounded() {
        use crate::build::SegmentedPst;
        use crate::mem::TwoSided;
        let pts = random_points(3000, 5000, 0xaa);
        let store = PageStore::in_memory(512);
        let ts = ThreeSidedPst::build(&store, &pts).unwrap();
        let seg = SegmentedPst::build(&store, &pts).unwrap();
        let mut s = 0xbbu64;
        for _ in 0..40 {
            let x0 = xorshift(&mut s, 5000);
            let y0 = xorshift(&mut s, 5000);
            let a = ts.query(&store, ThreeSided { x1: x0, x2: i64::MAX, y0 }).unwrap();
            let b = seg.query(&store, TwoSided { x0, y0 }).unwrap();
            assert_eq!(ids(a), ids(b));
        }
    }

    #[test]
    fn query_io_is_optimal_shape() {
        let pts = random_points(20_000, 100_000, 0xcc);
        let store = PageStore::in_memory(512);
        let pst = ThreeSidedPst::build(&store, &pts).unwrap();
        let b = points_capacity(512) as u64;
        let mut s = 0xddu64;
        for _ in 0..60 {
            let a = xorshift(&mut s, 100_000);
            let w = xorshift(&mut s, 30_000);
            let q = ThreeSided { x1: a, x2: a + w, y0: xorshift(&mut s, 100_000) };
            let (res, c) = pst.query_counted(&store, q).unwrap();
            let t = res.len() as u64;
            // Two boundary paths, each ~log_B n segments of O(1) reads.
            let allowed = 90 + 6 * (t / b + 1);
            assert!(c.total() <= allowed, "io={} t={t} ({c:?})", c.total());
        }
    }

    #[test]
    fn space_is_log_squared_b_shaped() {
        let pts = random_points(20_000, 100_000, 0xee);
        let store = PageStore::in_memory(512);
        let before = store.live_pages();
        ThreeSidedPst::build(&store, &pts).unwrap();
        let pages = store.live_pages() - before;
        let b = points_capacity(512) as u64;
        let log_b = 5u64;
        let bound = 6 * (20_000 / b) * log_b * log_b;
        assert!(pages <= bound, "space {pages} exceeds O(n/B log^2 B) ~ {bound}");
    }
}
