//! Fully dynamic PSTs (§5): buffered updates over the two-level structure.
//!
//! ## Mechanism (Theorem 5.1)
//!
//! Following §5, every *super node* — realized here as one skeletal page of
//! the region tree, a subtree of height `h ≈ log B` — carries an update
//! buffer `U` of one block, and every region carries a buffer `u`:
//!
//! * An update is logged in the root page's `U` (`O(1)` I/Os). When `U`
//!   overflows, its updates trickle one level of pages down: each is either
//!   applied to the in-page region that contains its coordinates (the
//!   region's X/Y lists and the page's A/S caches are rebuilt — `O(B)`
//!   I/Os per flush, `O(1)` amortized) or forwarded to a child page's `U`,
//!   cascading.
//! * Applied updates are also logged in the region's `u`; the region's
//!   **inner PST is rebuilt only when `u` overflows** (`O(log B · log log
//!   B)` per `B` updates — §5's accounting).
//! * Queries run the static §4.1 algorithm, reading the `U` buffer of
//!   every page they visit and the corner's `u`, then merge: buffered
//!   deletes mask stale results, buffered inserts that satisfy the query
//!   are added. Sequence stamps resolve op order across buffer levels.
//!   The merge costs one extra I/O per visited page — `O(log_B n)` — and
//!   can remove at most one block's worth of points per super node, which
//!   is the paper's "for every `B log B` points we collect we can lose at
//!   most `B`" argument.
//!
//! ## Substitution (documented in DESIGN.md)
//!
//! The paper maintains balance by re-dividing super nodes every `B log B`
//! updates (same x-division, new y-lines, pushing/borrowing points across
//! super-node boundaries) plus subtree rebuilds on 2× sibling imbalance.
//! We substitute both with a single mechanism at the same amortized cost:
//! a per-page churn counter triggers a **subtree rebuild** (gather all
//! live points below the page, resolve pending ops by stamp, rebuild
//! statically, splice into the parent). A rebuild restores the perfect
//! decomposition, which subsumes re-division and rebalancing. Rebuilds are
//! also triggered eagerly by two rare invariant hazards (a region emptied
//! by deletes while it still has children, or a region growing past twice
//! its capacity); an adversarially targeted delete stream can therefore
//! exceed the amortized bound — the trade-off is noted in EXPERIMENTS.md.
//!
//! ## Dynamic 3-sided queries (Theorem 5.2)
//!
//! [`DynamicThreeSidedPst`] wraps the static Theorem 3.3 structure with a
//! root buffer of `B·log_B n` updates (queries scan it: `O(log_B n)` extra
//! I/Os, keeping queries optimal) and rebuilds the structure on overflow.
//! The measured amortized update cost is reported in experiment E11.

use std::collections::HashMap;

use pc_pagestore::codec::{PageReader, PageWriter};
use pc_pagestore::layout::BlockList;
use pc_pagestore::{PageId, PageStore, Point, Record, Result};

use crate::build::SEntry;
use crate::mem::{cmp_x, cmp_y, TwoSided};
use crate::query::QueryCounters;
use crate::three_sided::{ThreeSided, ThreeSidedPst};
use crate::two_level::{
    block_capacity, buffer_capacity, build_region_tree, decode_header, decode_record,
    encode_header, encode_record, query_handle_buffered, read_buffer, region_caps, write_buffer,
    InnerHandle, NodeRef, PageHeaderInfo, RegionRecord, UpdateRec, PAGE_HEADER, RECORD_LEN,
};

/// Outcome of a page flush: either the page was rewritten in place, or
/// its whole subtree was rebuilt under a fresh root page.
enum FlushOutcome {
    InPlace,
    Rebuilt(PageId),
}

/// Fully dynamic external PST for 2-sided queries (Theorem 5.1):
/// `O(log_B n + t/B)` queries, `O(log_B n)` amortized updates,
/// `O((n/B)·log log B)` space plus one buffer block per super node.
pub struct DynamicPst {
    root: PageId,
    caps: Vec<usize>,
    seq: u64,
    live: u64,
}

impl DynamicPst {
    /// Builds the structure over an initial point set (ids must be unique
    /// among live points; updates preserve this invariant).
    pub fn build(store: &PageStore, points: &[Point]) -> Result<Self> {
        let caps = region_caps(store.page_size(), 2);
        assert!(!caps.is_empty(), "page too small for the two-level scheme");
        let handle = build_region_tree(store, points, &caps)?;
        Ok(DynamicPst { root: handle.root, caps, seq: 0, live: points.len() as u64 })
    }

    /// Serializes the structure's handle — root page, update sequence,
    /// live count — as a fixed 24-byte descriptor. Everything else
    /// (`caps`) is a pure function of the store's page size, so the
    /// descriptor plus the store's pages is the whole structure: a service
    /// that commits the descriptor with each durable batch can reopen the
    /// PST after a crash with [`DynamicPst::open`].
    pub fn descriptor(&self) -> [u8; 24] {
        let mut out = [0u8; 24];
        out[0..8].copy_from_slice(&self.root.0.to_le_bytes());
        out[8..16].copy_from_slice(&self.seq.to_le_bytes());
        out[16..24].copy_from_slice(&self.live.to_le_bytes());
        out
    }

    /// Reopens a structure from a [`DynamicPst::descriptor`] against a
    /// (recovered) store. The root page is read and decoded up front, so a
    /// descriptor pointing at garbage fails here with a typed error rather
    /// than on the first query.
    pub fn open(store: &PageStore, desc: &[u8]) -> Result<Self> {
        if desc.len() != 24 {
            return Err(pc_pagestore::StoreError::Corrupt(format!(
                "dynamic PST descriptor must be 24 bytes, got {}",
                desc.len()
            )));
        }
        let word = |i: usize| u64::from_le_bytes(desc[i..i + 8].try_into().expect("8 bytes"));
        let root = PageId(word(0));
        let caps = region_caps(store.page_size(), 2);
        assert!(!caps.is_empty(), "page too small for the two-level scheme");
        decode_header(&store.read(root)?)?;
        Ok(DynamicPst { root, caps, seq: word(8), live: word(16) })
    }

    /// Number of live points (settled plus buffered).
    pub fn len(&self) -> u64 {
        self.live
    }

    /// True when no points are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Update records applied since the initial build — the `seq` word of
    /// the descriptor. A recovered node reports this to the router so the
    /// journal replay resumes exactly past what the WAL preserved.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Inserts a point. Amortized `O(log_B n)` I/Os.
    pub fn insert(&mut self, store: &PageStore, p: Point) -> Result<()> {
        let _span = pc_obs::span!("dynpst_insert");
        self.seq += 1;
        self.live += 1;
        let rec = UpdateRec { is_delete: false, seq: self.seq, p };
        self.push_updates(store, self.root, vec![rec], None)
    }

    /// Deletes a point (matched by its full `(x, y, id)` identity; a
    /// non-existent point is a no-op apart from buffer traffic).
    /// Amortized `O(log_B n)` I/Os.
    pub fn delete(&mut self, store: &PageStore, p: Point) -> Result<()> {
        let _span = pc_obs::span!("dynpst_delete");
        self.seq += 1;
        self.live = self.live.saturating_sub(1);
        let rec = UpdateRec { is_delete: true, seq: self.seq, p };
        self.push_updates(store, self.root, vec![rec], None)
    }

    /// Answers a 2-sided query, merging buffered updates.
    pub fn query(&self, store: &PageStore, q: TwoSided) -> Result<Vec<Point>> {
        Ok(self.query_counted(store, q)?.0)
    }

    /// Answers a 2-sided query with I/O counters.
    pub fn query_counted(
        &self,
        store: &PageStore,
        q: TwoSided,
    ) -> Result<(Vec<Point>, QueryCounters)> {
        let handle = InnerHandle { root: self.root, n: self.live.max(1), is_region: true };
        let (static_res, pending, counters) = query_handle_buffered(store, handle, q)?;
        // Latest op per point id wins (pending may contain the same op
        // twice when a page is visited along several traversal arms).
        let mut latest: HashMap<u64, UpdateRec> = HashMap::new();
        for op in pending {
            let e = latest.entry(op.p.id).or_insert(op);
            if op.seq > e.seq {
                *e = op;
            }
        }
        let mut results: Vec<Point> =
            static_res.into_iter().filter(|p| !latest.contains_key(&p.id)).collect();
        results.extend(
            latest.values().filter(|op| !op.is_delete && q.contains(&op.p)).map(|op| op.p),
        );
        Ok((results, counters))
    }

    /// Pushes updates into a page's `U` buffer, flushing the page whenever
    /// the buffer fills. `parent` is `(page, slot, child_is_right)` for
    /// splice patching on rebuild (`None` at the root).
    fn push_updates(
        &mut self,
        store: &PageStore,
        mut page_id: PageId,
        mut ops: Vec<UpdateRec>,
        parent: Option<(PageId, u16, bool)>,
    ) -> Result<()> {
        let cap = buffer_capacity(store.page_size());
        loop {
            let page = store.read(page_id)?;
            let mut header = decode_header(&page)?;
            let mut buffered = if header.u_page.is_null() {
                Vec::new()
            } else {
                read_buffer(store, header.u_page)?
            };
            let space = cap.saturating_sub(buffered.len());
            let take = space.min(ops.len());
            buffered.extend(ops.drain(..take));
            if header.u_page.is_null() {
                header.u_page = store.alloc()?;
                write_buffer(store, header.u_page, &buffered)?;
                patch_header(store, page_id, &header)?;
            } else {
                write_buffer(store, header.u_page, &buffered)?;
            }
            if buffered.len() >= cap {
                // A flush may rebuild the subtree under a fresh page; keep
                // appending the remaining ops to the new root.
                if let FlushOutcome::Rebuilt(new_page) =
                    self.flush_page(store, page_id, parent)?
                {
                    page_id = new_page;
                }
            }
            if ops.is_empty() {
                return Ok(());
            }
        }
    }

    /// Distributes a page's buffered updates: applies those landing in
    /// in-page regions (rebuilding the page's lists and caches) and
    /// forwards the rest to child pages. May instead rebuild the whole
    /// subtree when churn or an invariant hazard demands it.
    fn flush_page(
        &mut self,
        store: &PageStore,
        page_id: PageId,
        parent: Option<(PageId, u16, bool)>,
    ) -> Result<FlushOutcome> {
        let page = store.read(page_id)?;
        let mut header = decode_header(&page)?;
        if header.u_page.is_null() {
            return Ok(FlushOutcome::InPlace);
        }
        let mut ops = read_buffer(store, header.u_page)?;
        if ops.is_empty() {
            return Ok(FlushOutcome::InPlace);
        }
        ops.sort_unstable_by_key(|o| o.seq);
        // Clear the buffer up front (the page itself is kept for reuse).
        write_buffer(store, header.u_page, &[])?;

        // Materialize all in-page regions.
        let count = header.count as usize;
        let mut records: Vec<RegionRecord> = Vec::with_capacity(count);
        for slot in 0..count {
            records.push(decode_record(&page, slot as u16)?);
        }
        let mut points: Vec<Vec<Point>> = Vec::with_capacity(count);
        for rec in &records {
            let mut pts = rec.x_list.read_all(store)?;
            pts.sort_unstable_by(|a, b| cmp_y(b, a));
            points.push(pts);
        }

        let region_cap = self.caps[0];
        // Per-child-page forwards: (child ref, parent slot, is_right, ops).
        let mut forwards: HashMap<u64, (NodeRef, u16, bool, Vec<UpdateRec>)> = HashMap::new();
        let mut touched: Vec<Vec<UpdateRec>> = vec![Vec::new(); count];
        let mut net: i64 = 0;
        let mut hazard = false;
        for op in &ops {
            net += if op.is_delete { -1 } else { 1 };
            // Trickle: the first region (top-down on the op's x-path) whose
            // y-band contains the point. Records store only the split's x
            // value, but the canonical division orders by the full
            // (x, y, id) key — so on an x-tie the point may live on either
            // side. Inserts consistently go left; deletes explore *both*
            // sides of every tie (the branch without the point is a
            // harmless no-op, and at most one branch ever removes it).
            let mut pending_slots = vec![0usize];
            let mut done = false;
            while let Some(start_slot) = pending_slots.pop() {
                if done {
                    break;
                }
                let mut slot = start_slot;
                loop {
                    let rec = &records[slot];
                    let has_children = !rec.left.page.is_null();
                    let in_band = match points[slot].last() {
                        Some(m) => cmp_y(&op.p, m) != std::cmp::Ordering::Less,
                        None => {
                            if has_children {
                                // Empty region above live children: broken band.
                                hazard = true;
                            }
                            true
                        }
                    };
                    if in_band || !has_children {
                        if op.is_delete {
                            if let Some(i) = points[slot].iter().position(|x| x.id == op.p.id) {
                                points[slot].remove(i);
                                touched[slot].push(*op);
                                done = true;
                            }
                            // Not found on this branch: other tie branches
                            // (or a buffered insert below) may hold it.
                        } else {
                            let pos = points[slot].partition_point(|x| {
                                cmp_y(x, &op.p) == std::cmp::Ordering::Greater
                            });
                            points[slot].insert(pos, op.p);
                            if points[slot].len() > 2 * region_cap {
                                hazard = true;
                            }
                            touched[slot].push(*op);
                            done = true;
                        }
                        break;
                    }
                    let tie = op.is_delete && op.p.x == rec.split_x;
                    let go_left = op.p.x <= rec.split_x;
                    let (child, other) =
                        if go_left { (rec.left, rec.right) } else { (rec.right, rec.left) };
                    if tie {
                        // Queue the other side of the tie.
                        if other.page == page_id {
                            pending_slots.push(other.slot as usize);
                        } else if !other.page.is_null() {
                            forwards
                                .entry(other.page.0)
                                .or_insert_with(|| (other, slot as u16, go_left, Vec::new()))
                                .3
                                .push(*op);
                        }
                    }
                    if child.page == page_id {
                        slot = child.slot as usize;
                    } else {
                        forwards
                            .entry(child.page.0)
                            .or_insert_with(|| (child, slot as u16, !go_left, Vec::new()))
                            .3
                            .push(*op);
                        break;
                    }
                }
            }
        }


        let applied: usize = touched.iter().map(|t| t.len()).sum();
        header.churn += applied as u32;
        header.subtree_n = (header.subtree_n as i64 + net).max(0) as u64;

        let rebuild_threshold =
            (header.subtree_n / 2).max(4 * buffer_capacity(store.page_size()) as u64);
        if hazard || u64::from(header.churn) > rebuild_threshold {
            // The on-disk lists were not rewritten, so *every* op of this
            // flush — applied in memory or queued for forwarding — must be
            // replayed by the rebuild's gather (the U buffer was already
            // cleared above).
            patch_header(store, page_id, &header)?;
            let new_page = self.rebuild_subtree(store, page_id, parent, ops)?;
            return Ok(FlushOutcome::Rebuilt(new_page));
        }

        // Rewrite the page's regions: new X/Y lists and caches.
        self.rewrite_page(store, page_id, header, records, points, &touched, parent)?;

        // Forward the rest (children flush recursively as needed).
        for (_, (child, pslot, is_right, f_ops)) in forwards {
            self.push_updates(store, child.page, f_ops, Some((page_id, pslot, is_right)))?;
        }
        Ok(FlushOutcome::InPlace)
    }

    /// Rewrites one page after its regions' contents changed: fresh
    /// X/Y/A/S lists, per-region `u` appends, inner rebuilds on `u`
    /// overflow, and a parent patch when the page root's metadata changed.
    #[allow(clippy::too_many_arguments)]
    fn rewrite_page(
        &mut self,
        store: &PageStore,
        page_id: PageId,
        header: PageHeaderInfo,
        mut records: Vec<RegionRecord>,
        points: Vec<Vec<Point>>,
        touched: &[Vec<UpdateRec>],
        parent: Option<(PageId, u16, bool)>,
    ) -> Result<()> {
        let count = records.len();
        let b = block_capacity(store.page_size());
        let u_cap = buffer_capacity(store.page_size());

        // Rebuild X/Y lists and region buffers of touched regions.
        let mut x_sorted: Vec<Vec<Point>> = Vec::with_capacity(count);
        for (slot, pts) in points.iter().enumerate() {
            let mut xs = pts.clone();
            xs.sort_unstable_by(|a, c| cmp_x(c, a));
            x_sorted.push(xs);
            if touched[slot].is_empty() {
                continue;
            }
            records[slot].x_list.free(store)?;
            records[slot].y_list.free(store)?;
            records[slot].x_list = BlockList::build(store, &x_sorted[slot])?;
            records[slot].y_list = BlockList::build(store, &points[slot])?;
            records[slot].own_cnt = points[slot].len() as u16;
            records[slot].min_y_y = points[slot].last().map(|p| p.y).unwrap_or(0);

            // Log into the region's `u`; rebuild the inner PST on overflow.
            let mut u_ops = if records[slot].u_buf.is_null() {
                Vec::new()
            } else {
                read_buffer(store, records[slot].u_buf)?
            };
            u_ops.extend(touched[slot].iter().copied());
            if u_ops.len() >= u_cap {
                free_inner(store, records[slot].inner_root, records[slot].inner_is_region)?;
                let inner = build_region_tree(store, &points[slot], &self.caps[1..])?;
                records[slot].inner_root = inner.root;
                records[slot].inner_n = inner.n;
                records[slot].inner_is_region = inner.is_region;
                u_ops.clear();
            }
            if records[slot].u_buf.is_null() {
                records[slot].u_buf = store.alloc()?;
            }
            write_buffer(store, records[slot].u_buf, &u_ops)?;
        }

        // Refresh intra-page parent-side metadata and every A/S cache.
        let slot_of_ref =
            |r: NodeRef| -> Option<usize> { (r.page == page_id).then_some(r.slot as usize) };
        for slot in 0..count {
            let (l, r) = (records[slot].left, records[slot].right);
            if let Some(ls) = slot_of_ref(l) {
                records[slot].left_cnt = records[ls].own_cnt;
                records[slot].left_is_leaf = records[ls].left.page.is_null();
            }
            if let Some(rs) = slot_of_ref(r) {
                records[slot].right_cnt = records[rs].own_cnt;
                records[slot].right_is_leaf = records[rs].left.page.is_null();
                records[slot].right_y_list = records[rs].y_list;
            }
        }
        // In-page ancestor chains by BFS from slot 0.
        let mut chains: Vec<Vec<(usize, u16, bool)>> = vec![Vec::new(); count];
        let mut order = vec![(0usize, 0u16)];
        let mut qi = 0;
        while qi < order.len() {
            let (slot, depth) = order[qi];
            qi += 1;
            for (child, went_left) in [(records[slot].left, true), (records[slot].right, false)]
            {
                if let Some(cs) = slot_of_ref(child) {
                    let mut chain = chains[slot].clone();
                    chain.push((slot, depth, went_left));
                    chains[cs] = chain;
                    order.push((cs, depth + 1));
                }
            }
        }
        for slot in 0..count {
            records[slot].a_list.free(store)?;
            records[slot].s_list.free(store)?;
            let mut a: Vec<SEntry> = Vec::new();
            let mut s: Vec<SEntry> = Vec::new();
            for &(anc, anc_depth, went_left) in &chains[slot] {
                a.extend(x_sorted[anc].iter().take(b).map(|&p| SEntry { p, depth: anc_depth }));
                if went_left {
                    if let Some(sib) = slot_of_ref(records[anc].right) {
                        s.extend(
                            points[sib].iter().take(b).map(|&p| SEntry { p, depth: anc_depth }),
                        );
                    }
                }
            }
            a.sort_unstable_by(|x, y| cmp_x(&y.p, &x.p));
            s.sort_unstable_by(|x, y| cmp_y(&y.p, &x.p));
            records[slot].a_list = BlockList::build(store, &a)?;
            records[slot].s_list = BlockList::build(store, &s)?;
        }

        // Serialize the page.
        let mut buf = vec![0u8; store.page_size()];
        let used = {
            let mut w = PageWriter::new(&mut buf);
            encode_header(&mut w, &header)?;
            for rec in &records {
                encode_record(&mut w, rec)?;
            }
            w.position()
        };
        store.write(page_id, &buf[..used])?;

        // Patch the parent's view of this page's root if it changed.
        if let Some((pp, pslot, is_right)) = parent {
            patch_parent_child(store, pp, pslot, is_right, &records[0])?;
        }
        Ok(())
    }

    /// Gathers every live point under `page_id` (resolving pending buffered
    /// ops by stamp, plus `extra` ops not yet buffered), frees the old
    /// subtree, rebuilds it statically, and splices the new root into the
    /// parent.
    fn rebuild_subtree(
        &mut self,
        store: &PageStore,
        page_id: PageId,
        parent: Option<(PageId, u16, bool)>,
        extra: Vec<UpdateRec>,
    ) -> Result<PageId> {
        let mut live: HashMap<u64, Point> = HashMap::new();
        let mut ops: Vec<UpdateRec> = extra;
        gather_subtree(store, page_id, &mut live, &mut ops)?;
        ops.sort_unstable_by_key(|o| o.seq);
        for op in ops {
            if op.is_delete {
                live.remove(&op.p.id);
            } else {
                live.insert(op.p.id, op.p);
            }
        }
        let points: Vec<Point> = live.into_values().collect();
        free_subtree(store, page_id)?;
        let handle = build_region_tree(store, &points, &self.caps)?;
        match parent {
            None => self.root = handle.root,
            Some((pp, pslot, is_right)) => {
                let root_page = store.read(handle.root)?;
                let new_root = decode_record(&root_page, 0)?;
                let page = store.read(pp)?;
                let mut rec = decode_record(&page, pslot)?;
                if is_right {
                    rec.right = NodeRef { page: handle.root, slot: 0 };
                    rec.right_cnt = new_root.own_cnt;
                    rec.right_is_leaf = new_root.left.page.is_null();
                    rec.right_y_list = new_root.y_list;
                } else {
                    rec.left = NodeRef { page: handle.root, slot: 0 };
                    rec.left_cnt = new_root.own_cnt;
                    rec.left_is_leaf = new_root.left.page.is_null();
                }
                patch_record(store, pp, pslot, &rec)?;
            }
        }
        Ok(handle.root)
    }
}

/// Rewrites just the header of a page, preserving its records.
fn patch_header(store: &PageStore, page_id: PageId, header: &PageHeaderInfo) -> Result<()> {
    let page = store.read(page_id)?;
    let mut bytes = page.to_vec();
    {
        let mut w = PageWriter::new(&mut bytes[..PAGE_HEADER]);
        encode_header(&mut w, header)?;
    }
    store.write(page_id, &bytes)
}

/// Rewrites one record of a page in place.
fn patch_record(store: &PageStore, page_id: PageId, slot: u16, rec: &RegionRecord) -> Result<()> {
    let page = store.read(page_id)?;
    let mut bytes = page.to_vec();
    {
        let start = PAGE_HEADER + RECORD_LEN * slot as usize;
        let mut w = PageWriter::new(&mut bytes[start..start + RECORD_LEN]);
        encode_record(&mut w, rec)?;
    }
    store.write(page_id, &bytes)
}

/// Updates a parent record's child-side metadata after the child page's
/// root region changed.
fn patch_parent_child(
    store: &PageStore,
    parent_page: PageId,
    parent_slot: u16,
    child_is_right: bool,
    child_root: &RegionRecord,
) -> Result<()> {
    let page = store.read(parent_page)?;
    let mut rec = decode_record(&page, parent_slot)?;
    if child_is_right {
        rec.right_cnt = child_root.own_cnt;
        rec.right_is_leaf = child_root.left.page.is_null();
        rec.right_y_list = child_root.y_list;
    } else {
        rec.left_cnt = child_root.own_cnt;
        rec.left_is_leaf = child_root.left.page.is_null();
    }
    patch_record(store, parent_page, parent_slot, &rec)
}

/// Collects live points (from X-lists) and pending buffered ops of the
/// subtree rooted at `page_id`. Region `u` contents are *not* collected:
/// those ops are already reflected in the X-lists.
fn gather_subtree(
    store: &PageStore,
    page_id: PageId,
    live: &mut HashMap<u64, Point>,
    ops: &mut Vec<UpdateRec>,
) -> Result<()> {
    let page = store.read(page_id)?;
    let header = decode_header(&page)?;
    if !header.u_page.is_null() {
        ops.extend(read_buffer(store, header.u_page)?);
    }
    for slot in 0..header.count {
        let rec = decode_record(&page, slot)?;
        for p in rec.x_list.read_all(store)? {
            live.insert(p.id, p);
        }
        for child in [rec.left, rec.right] {
            if !child.page.is_null() && child.page != page_id && child.slot == 0 {
                gather_subtree(store, child.page, live, ops)?;
            }
        }
    }
    Ok(())
}

/// Frees an inner structure (basic PST or nested region tree).
fn free_inner(store: &PageStore, root: PageId, is_region: bool) -> Result<()> {
    if is_region {
        free_subtree(store, root)
    } else {
        free_basic(store, root)
    }
}

/// Frees a region-tree subtree: all pages, lists, buffers, and inners.
fn free_subtree(store: &PageStore, page_id: PageId) -> Result<()> {
    let page = store.read(page_id)?;
    let header = decode_header(&page)?;
    if !header.u_page.is_null() {
        store.free(header.u_page)?;
    }
    for slot in 0..header.count {
        let rec = decode_record(&page, slot)?;
        rec.x_list.free(store)?;
        rec.y_list.free(store)?;
        // right_y_list aliases the right child's own y_list: not freed here.
        rec.a_list.free(store)?;
        rec.s_list.free(store)?;
        if !rec.u_buf.is_null() {
            store.free(rec.u_buf)?;
        }
        free_inner(store, rec.inner_root, rec.inner_is_region)?;
        for child in [rec.left, rec.right] {
            if !child.page.is_null() && child.page != page_id && child.slot == 0 {
                free_subtree(store, child.page)?;
            }
        }
    }
    store.free(page_id)
}

/// Frees a basic (Lemma 3.1) PST: skeletal pages, points pages, caches.
fn free_basic(store: &PageStore, root_page: PageId) -> Result<()> {
    use crate::build::decode_record as decode_basic;
    let page = store.read(root_page)?;
    let mut r = PageReader::new(&page);
    let count = r.get_u16()?;
    for slot in 0..count {
        let rec = decode_basic(&page, slot)?;
        store.free(rec.own_pts)?;
        rec.a_list.free(store)?;
        rec.s_list.free(store)?;
        for child in [rec.left, rec.right] {
            if !child.page.is_null() && child.page != root_page && child.slot == 0 {
                free_basic(store, child.page)?;
            }
        }
    }
    store.free(root_page)
}

/// Dynamic 3-sided structure (Theorem 5.2): the static Theorem 3.3 index
/// plus a root update buffer of `B·log_B n` entries. Queries stay optimal
/// (the buffer scan is `O(log_B n)` I/Os); the structure is rebuilt when
/// the buffer fills.
pub struct DynamicThreeSidedPst {
    inner: ThreeSidedPst,
    buffer: Vec<PageId>,
    buffered: Vec<UpdateRec>,
    seq: u64,
    buffer_cap: usize,
}

impl DynamicThreeSidedPst {
    /// Builds the structure over an initial point set.
    pub fn build(store: &PageStore, points: &[Point]) -> Result<Self> {
        let inner = ThreeSidedPst::build(store, points)?;
        let b = block_capacity(store.page_size());
        let n = points.len().max(b);
        // B * log_B n buffered updates keep the query overhead at
        // O(log_B n) block reads.
        let log_b_n = (n as f64).log(b.max(2) as f64).ceil().max(1.0) as usize;
        Ok(DynamicThreeSidedPst {
            inner,
            buffer: Vec::new(),
            buffered: Vec::new(),
            seq: 0,
            buffer_cap: b * log_b_n,
        })
    }

    /// Number of live points.
    pub fn len(&self) -> u64 {
        let buffered: i64 =
            self.buffered.iter().map(|op| if op.is_delete { -1i64 } else { 1 }).sum();
        (self.inner.len() as i64 + buffered).max(0) as u64
    }

    /// True when no points are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts a point.
    pub fn insert(&mut self, store: &PageStore, p: Point) -> Result<()> {
        let _span = pc_obs::span!("dynpst3_insert");
        self.seq += 1;
        let rec = UpdateRec { is_delete: false, seq: self.seq, p };
        self.log(store, rec)
    }

    /// Deletes a point (by full identity).
    pub fn delete(&mut self, store: &PageStore, p: Point) -> Result<()> {
        let _span = pc_obs::span!("dynpst3_delete");
        self.seq += 1;
        let rec = UpdateRec { is_delete: true, seq: self.seq, p };
        self.log(store, rec)
    }

    fn log(&mut self, store: &PageStore, rec: UpdateRec) -> Result<()> {
        // Persist buffered ops in blocks; the in-memory copy mirrors disk
        // (appending costs the read-modify-write the experiments measure).
        self.buffered.push(rec);
        let per_page = (store.page_size() - 2) / UpdateRec::ENCODED_LEN;
        let need_pages = self.buffered.len().div_ceil(per_page);
        while self.buffer.len() < need_pages {
            self.buffer.push(store.alloc()?);
        }
        let last = self.buffer[need_pages - 1];
        let start = (need_pages - 1) * per_page;
        write_buffer(store, last, &self.buffered[start..])?;

        if self.buffered.len() >= self.buffer_cap {
            self.rebuild(store)?;
        }
        Ok(())
    }

    fn rebuild(&mut self, store: &PageStore) -> Result<()> {
        // Collect the full live set: existing structure points + buffer.
        let everything =
            self.inner.query(store, ThreeSided { x1: i64::MIN, x2: i64::MAX, y0: i64::MIN })?;
        let mut live: HashMap<u64, Point> = everything.into_iter().map(|p| (p.id, p)).collect();
        self.buffered.sort_unstable_by_key(|o| o.seq);
        for op in self.buffered.drain(..) {
            if op.is_delete {
                live.remove(&op.p.id);
            } else {
                live.insert(op.p.id, op.p);
            }
        }
        for page in self.buffer.drain(..) {
            store.free(page)?;
        }
        // Note: the old static structure's pages are leaked into the store
        // (the static type has no free-walk); experiments build dynamic
        // 3-sided structures in dedicated stores and measure I/O, not
        // residual space. The 2-sided DynamicPst does free everything.
        let points: Vec<Point> = live.into_values().collect();
        self.inner = ThreeSidedPst::build(store, &points)?;
        Ok(())
    }

    /// Answers a 3-sided query, merging buffered updates (the static query
    /// plus `O(buffer/B)` = `O(log_B n)` block reads).
    pub fn query(&self, store: &PageStore, q: ThreeSided) -> Result<Vec<Point>> {
        let static_res = self.inner.query(store, q)?;
        // Re-read the persisted buffer pages (honest I/O accounting).
        let mut ops: Vec<UpdateRec> = Vec::new();
        for &page in &self.buffer {
            ops.extend(read_buffer(store, page)?);
        }
        let mut latest: HashMap<u64, UpdateRec> = HashMap::new();
        for op in ops {
            let e = latest.entry(op.p.id).or_insert(op);
            if op.seq > e.seq {
                *e = op;
            }
        }
        let mut results: Vec<Point> =
            static_res.into_iter().filter(|p| !latest.contains_key(&p.id)).collect();
        results.extend(
            latest.values().filter(|op| !op.is_delete && q.contains(&op.p)).map(|op| op.p),
        );
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_pagestore::PageStore;

    fn xorshift(state: &mut u64, bound: i64) -> i64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        (*state % bound as u64) as i64
    }

    fn random_points(n: usize, domain: i64, seed: u64) -> Vec<Point> {
        let mut s = seed;
        (0..n)
            .map(|id| Point::new(xorshift(&mut s, domain), xorshift(&mut s, domain), id as u64))
            .collect()
    }

    fn ids(mut pts: Vec<Point>) -> Vec<u64> {
        let mut out: Vec<u64> = pts.drain(..).map(|p| p.id).collect();
        out.sort_unstable();
        out
    }

    fn check_against_oracle(
        store: &PageStore,
        pst: &DynamicPst,
        oracle: &HashMap<u64, Point>,
        queries: &[(i64, i64)],
        label: &str,
    ) {
        for &(x0, y0) in queries {
            let q = TwoSided { x0, y0 };
            let res = pst.query(store, q).unwrap();
            let mut got = ids(res.clone());
            got.dedup();
            assert_eq!(got.len(), res.len(), "{label}: duplicates at {q:?}");
            let mut want: Vec<u64> =
                oracle.values().filter(|p| q.contains(p)).map(|p| p.id).collect();
            want.sort_unstable();
            assert_eq!(got, want, "{label}: {q:?}");
        }
    }

    #[test]
    fn inserts_become_visible_immediately() {
        let store = PageStore::in_memory(512);
        let initial = random_points(500, 5000, 1);
        let mut pst = DynamicPst::build(&store, &initial).unwrap();
        let mut oracle: HashMap<u64, Point> = initial.iter().map(|p| (p.id, *p)).collect();
        let mut s = 0x42u64;
        for i in 0..300u64 {
            let p = Point::new(xorshift(&mut s, 5000), xorshift(&mut s, 5000), 10_000 + i);
            pst.insert(&store, p).unwrap();
            oracle.insert(p.id, p);
            if i % 37 == 0 {
                let queries =
                    [(xorshift(&mut s, 5000), xorshift(&mut s, 5000)), (0, 0), (4999, 0)];
                check_against_oracle(&store, &pst, &oracle, &queries, "insert phase");
            }
        }
        assert_eq!(pst.len(), 800);
    }

    #[test]
    fn descriptor_round_trips_through_open() {
        let store = PageStore::in_memory(512);
        let initial = random_points(400, 5000, 9);
        let mut pst = DynamicPst::build(&store, &initial).unwrap();
        let mut s = 0x99u64;
        for i in 0..150u64 {
            let p = Point::new(xorshift(&mut s, 5000), xorshift(&mut s, 5000), 20_000 + i);
            pst.insert(&store, p).unwrap();
        }
        let desc = pst.descriptor();
        let reopened = DynamicPst::open(&store, &desc).unwrap();
        assert_eq!(reopened.len(), pst.len());
        for q in [(0, 0), (2500, 2500), (4000, 100)] {
            let q = TwoSided { x0: q.0, y0: q.1 };
            let mut a: Vec<u64> = pst.query(&store, q).unwrap().iter().map(|p| p.id).collect();
            let mut b: Vec<u64> =
                reopened.query(&store, q).unwrap().iter().map(|p| p.id).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "{q:?}");
        }
        // Updates keep working through the reopened handle.
        let mut reopened = reopened;
        reopened.insert(&store, Point::new(1, 1, 99_999)).unwrap();
        assert_eq!(reopened.len(), pst.len() + 1);

        // Malformed descriptors are typed errors, not panics.
        assert!(DynamicPst::open(&store, &[0u8; 7]).is_err());
        assert!(DynamicPst::open(&store, &[0xFFu8; 24]).is_err());
    }

    #[test]
    fn deletes_mask_and_flush() {
        let store = PageStore::in_memory(512);
        let initial = random_points(800, 5000, 2);
        let mut pst = DynamicPst::build(&store, &initial).unwrap();
        let mut oracle: HashMap<u64, Point> = initial.iter().map(|p| (p.id, *p)).collect();
        let mut s = 0x77u64;
        for i in 0..400u64 {
            let victim_id = (xorshift(&mut s, 800)) as u64;
            if let Some(p) = oracle.remove(&victim_id) {
                pst.delete(&store, p).unwrap();
            }
            if i % 41 == 0 {
                let queries = [(xorshift(&mut s, 5000), xorshift(&mut s, 5000)), (0, 0)];
                check_against_oracle(&store, &pst, &oracle, &queries, "delete phase");
            }
        }
    }

    #[test]
    fn mixed_workload_differential() {
        let store = PageStore::in_memory(512);
        let initial = random_points(1500, 20_000, 3);
        let mut pst = DynamicPst::build(&store, &initial).unwrap();
        let mut oracle: HashMap<u64, Point> = initial.iter().map(|p| (p.id, *p)).collect();
        let mut s = 0x1010u64;
        let mut next_id = 100_000u64;
        for step in 0..2000u64 {
            if xorshift(&mut s, 3) < 2 {
                let p = Point::new(xorshift(&mut s, 20_000), xorshift(&mut s, 20_000), next_id);
                next_id += 1;
                pst.insert(&store, p).unwrap();
                oracle.insert(p.id, p);
            } else {
                let keys: Vec<u64> = oracle.keys().copied().collect();
                if !keys.is_empty() {
                    let k = keys[(xorshift(&mut s, keys.len() as i64)) as usize];
                    let p = oracle.remove(&k).unwrap();
                    pst.delete(&store, p).unwrap();
                }
            }
            if step % 97 == 0 {
                let queries = [
                    (xorshift(&mut s, 22_000) - 1000, xorshift(&mut s, 22_000) - 1000),
                    (0, 0),
                    (19_000, 19_000),
                ];
                check_against_oracle(&store, &pst, &oracle, &queries, "mixed");
            }
            assert_eq!(pst.len(), oracle.len() as u64, "step {step}");
        }
    }

    #[test]
    fn space_stays_bounded_under_churn() {
        // Insert/delete cycles must not leak pages: after heavy churn the
        // live page count stays proportional to the live point count.
        let store = PageStore::in_memory(512);
        let initial = random_points(2000, 10_000, 4);
        let mut pst = DynamicPst::build(&store, &initial).unwrap();
        let baseline = store.live_pages();
        let mut s = 0x5050u64;
        let mut oracle: HashMap<u64, Point> = initial.iter().map(|p| (p.id, *p)).collect();
        for next_id in 1_000_000u64..1_003_000 {
            // One insert + one delete: n stays ~constant.
            let p = Point::new(xorshift(&mut s, 10_000), xorshift(&mut s, 10_000), next_id);
            pst.insert(&store, p).unwrap();
            oracle.insert(p.id, p);
            let keys: Vec<u64> = oracle.keys().copied().collect();
            let k = keys[(xorshift(&mut s, keys.len() as i64)) as usize];
            let victim = oracle.remove(&k).unwrap();
            pst.delete(&store, victim).unwrap();
        }
        let after = store.live_pages();
        assert!(
            after <= 3 * baseline + 100,
            "page count grew from {baseline} to {after} under constant n"
        );
    }

    #[test]
    fn amortized_update_cost_is_logarithmic() {
        let store = PageStore::in_memory(512);
        let initial = random_points(10_000, 100_000, 5);
        let mut pst = DynamicPst::build(&store, &initial).unwrap();
        store.reset_stats();
        let mut s = 0x9090u64;
        let updates = 2000u64;
        for i in 0..updates {
            let p =
                Point::new(xorshift(&mut s, 100_000), xorshift(&mut s, 100_000), 500_000 + i);
            pst.insert(&store, p).unwrap();
        }
        let per_update = store.stats().total_io() as f64 / updates as f64;
        // O(log_B n) with a generous constant: at B=20, n=10k the flush
        // machinery (list rebuilds every ~15 updates) dominates.
        assert!(per_update < 60.0, "amortized update cost {per_update:.1} I/Os");
    }

    #[test]
    fn dynamic_three_sided_differential() {
        let store = PageStore::in_memory(512);
        let initial = random_points(1000, 10_000, 6);
        let mut pst = DynamicThreeSidedPst::build(&store, &initial).unwrap();
        let mut oracle: HashMap<u64, Point> = initial.iter().map(|p| (p.id, *p)).collect();
        let mut s = 0xa0a0u64;
        let mut next_id = 50_000u64;
        for step in 0..1200u64 {
            if xorshift(&mut s, 3) < 2 {
                let p = Point::new(xorshift(&mut s, 10_000), xorshift(&mut s, 10_000), next_id);
                next_id += 1;
                pst.insert(&store, p).unwrap();
                oracle.insert(p.id, p);
            } else {
                let keys: Vec<u64> = oracle.keys().copied().collect();
                if !keys.is_empty() {
                    let k = keys[(xorshift(&mut s, keys.len() as i64)) as usize];
                    let p = oracle.remove(&k).unwrap();
                    pst.delete(&store, p).unwrap();
                }
            }
            if step % 131 == 0 {
                let a = xorshift(&mut s, 10_000);
                let q = ThreeSided {
                    x1: a,
                    x2: a + xorshift(&mut s, 4000),
                    y0: xorshift(&mut s, 10_000),
                };
                let got = ids(pst.query(&store, q).unwrap());
                let mut want: Vec<u64> =
                    oracle.values().filter(|p| q.contains(p)).map(|p| p.id).collect();
                want.sort_unstable();
                assert_eq!(got, want, "step {step} {q:?}");
            }
            assert_eq!(pst.len(), oracle.len() as u64, "step {step}");
        }
    }
}
