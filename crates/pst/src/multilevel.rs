//! The multilevel scheme of §4.2 (Theorem 4.4).
//!
//! Instead of placing a basic PST inside each `B log B`-point region, the
//! multilevel scheme nests another region tree with regions of
//! `B·⌈log log B⌉` points, and so on — after `k` levels the space overhead
//! is `O((n/B)·log^(k) B)`, converging to `O((n/B)·log* B)` with query
//! time `O(log_B n + t/B + log* B)` (each level adds `O(1)` I/Os).
//!
//! This is a thin wrapper over the shared region-tree engine in
//! [`crate::two_level`], parameterized by the iterated-log capacity
//! sequence of [`crate::two_level::region_caps`]. The recursion saturates
//! naturally once the iterated log reaches 1, so asking for more levels
//! than `log* B` is safe.

use pc_pagestore::{PageStore, Point, Result};

use crate::mem::TwoSided;
use crate::query::QueryCounters;
use crate::two_level::{build_region_tree, query_handle, region_caps, InnerHandle};

/// The multilevel recursive PST (Theorem 4.4).
pub struct MultilevelPst {
    pub(crate) root: InnerHandle,
    pub(crate) levels: u32,
}

impl MultilevelPst {
    /// Builds a `levels`-deep structure over `points`.
    ///
    /// `levels = 1` is the basic PST (Lemma 3.1), `levels = 2` the
    /// two-level scheme (Theorem 4.3); higher values iterate §4.2. Values
    /// past `log* B` saturate.
    pub fn build(store: &PageStore, points: &[Point], levels: u32) -> Result<Self> {
        assert!(levels >= 1, "at least one level required");
        let caps = region_caps(store.page_size(), levels);
        Ok(MultilevelPst { root: build_region_tree(store, points, &caps)?, levels })
    }

    /// Number of indexed points.
    pub fn len(&self) -> u64 {
        self.root.n
    }

    /// True when no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.root.n == 0
    }

    /// The level count requested at build time.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Answers a 2-sided query.
    pub fn query(&self, store: &PageStore, q: TwoSided) -> Result<Vec<Point>> {
        Ok(self.query_counted(store, q)?.0)
    }

    /// Answers a 2-sided query with I/O counters.
    pub fn query_counted(
        &self,
        store: &PageStore,
        q: TwoSided,
    ) -> Result<(Vec<Point>, QueryCounters)> {
        query_handle(store, self.root, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_pagestore::PageStore;

    fn xorshift(state: &mut u64, bound: i64) -> i64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        (*state % bound as u64) as i64
    }

    fn random_points(n: usize, domain: i64, seed: u64) -> Vec<Point> {
        let mut s = seed;
        (0..n)
            .map(|id| Point::new(xorshift(&mut s, domain), xorshift(&mut s, domain), id as u64))
            .collect()
    }

    fn brute(points: &[Point], q: TwoSided) -> Vec<u64> {
        let mut ids: Vec<u64> =
            points.iter().filter(|p| q.contains(p)).map(|p| p.id).collect();
        ids.sort_unstable();
        ids
    }

    fn ids(mut pts: Vec<Point>) -> Vec<u64> {
        let mut out: Vec<u64> = pts.drain(..).map(|p| p.id).collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn all_level_counts_match_brute_force() {
        let pts = random_points(4000, 15_000, 0x6161);
        let store = PageStore::in_memory(512);
        let psts: Vec<MultilevelPst> = (1..=4)
            .map(|k| MultilevelPst::build(&store, &pts, k).unwrap())
            .collect();
        let mut s = 0x77u64;
        for i in 0..80 {
            let q = TwoSided {
                x0: xorshift(&mut s, 16_000) - 500,
                y0: xorshift(&mut s, 16_000) - 500,
            };
            let want = brute(&pts, q);
            for pst in &psts {
                let res = pst.query(&store, q).unwrap();
                assert_eq!(res.len(), want.len(), "dup? k={} q{i}={q:?}", pst.levels());
                assert_eq!(ids(res), want, "k={} q{i}={q:?}", pst.levels());
            }
        }
    }

    #[test]
    fn level_counts_saturate_at_log_star() {
        let pts = random_points(3000, 10_000, 0x1212);
        // Levels beyond log* B produce the same capacity sequence, hence
        // the same structure sizes.
        let store_a = PageStore::in_memory(512);
        MultilevelPst::build(&store_a, &pts, 4).unwrap();
        let store_b = PageStore::in_memory(512);
        MultilevelPst::build(&store_b, &pts, 12).unwrap();
        assert_eq!(store_a.live_pages(), store_b.live_pages());
    }

    #[test]
    fn duplicates_and_boundaries() {
        let pts: Vec<Point> =
            (0..800).map(|i| Point::new((i % 4) as i64 * 3, (i % 6) as i64 * 3, i)).collect();
        let store = PageStore::in_memory(512);
        let pst = MultilevelPst::build(&store, &pts, 3).unwrap();
        for x0 in [-1, 0, 3, 9, 10] {
            for y0 in [-1, 0, 6, 15, 16] {
                let q = TwoSided { x0, y0 };
                assert_eq!(ids(pst.query(&store, q).unwrap()), brute(&pts, q), "{q:?}");
            }
        }
    }
}
