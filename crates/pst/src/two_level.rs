//! The recursive region schemes of §4: two-level (Theorem 4.3) and the
//! shared engine for the multilevel scheme (Theorem 4.4).
//!
//! The top-level decomposition uses regions of `B·⌈log₂ B⌉` points, so
//! there are only `n/(B log B)` regions. Each region `R` stores (§4):
//!
//! * **X-list** — `R`'s points sorted descending by x, blocked;
//! * **Y-list** — sorted descending by y, blocked;
//! * **A-list** — the *first blocks* of the X-lists of `R`'s in-segment
//!   ancestors (segment = skeletal page), merged descending by x and
//!   tagged with the source depth;
//! * **S-list** — the first blocks of the Y-lists of the in-segment
//!   right-siblings, merged descending by y, tagged;
//! * an **inner structure** over `R`'s points: a Lemma 3.1 PST with
//!   full-path caches for the two-level scheme (height `O(log log B)` —
//!   Lemma 4.2's space bound), or recursively another region tree with
//!   regions of `B·⌈log₂ log₂ B⌉` points for the multilevel scheme
//!   (§4.2), bottoming out at the basic PST.
//!
//! The query (§4.1) reads `O(log_B n)` A/S caches along the corner path.
//! Because a cache holds only each ancestor's first block, the
//! **continuation rule** applies: a source's X-list (resp. a sibling's
//! Y-list) is read block by block from its second block if and only if all
//! its copied points qualified — every continued read is a full block of
//! answers except possibly the last. The corner region is queried through
//! its inner structure; descendants of fully-inside siblings are traversed
//! region by region, paid for by their parents' full output.

use std::collections::HashMap;

use pc_pagestore::codec::{PageReader, PageWriter};
use pc_pagestore::layout::BlockList;
use pc_pagestore::{PageId, PageStore, Point, Record, Result, NULL_PAGE};

use crate::build::{build_external, points_capacity, CacheMode, PstCore, SEntry};
use crate::mem::{cmp_x, MemPst, TwoSided, NONE};
use crate::query::{run_two_sided, QueryCounters};

/// Byte size of one region record.
///
/// ```text
/// [split_x i64][min_y_y i64][left u64+u16][right u64+u16]
/// [own_cnt u16][left_cnt u16][right_cnt u16][child_leaf_flags u8]
/// [x_list 16][y_list 16][right_y_list 16][a_list 16][s_list 16]
/// [inner_root u64][inner_n u64][inner_is_region u8][u_buf u64]
/// ```
///
/// The page header carries the dynamic-structure state (all zero for
/// static builds):
///
/// ```text
/// [count u16][pad u16][churn u32][subtree_n u64][u_page u64][pad to 24]
/// ```
pub const RECORD_LEN: usize = 8 + 8 + 10 + 10 + 2 + 2 + 2 + 1 + 16 * 5 + 8 + 8 + 1 + 8;
pub(crate) const PAGE_HEADER: usize = 24;

/// Region records per skeletal page.
pub fn skeletal_capacity(page_size: usize) -> usize {
    let cap = (page_size - PAGE_HEADER) / RECORD_LEN;
    assert!(cap >= 3, "page size {page_size} too small for a region-tree page");
    cap
}

/// Blocked-list capacity for points — the paper's `B`.
pub fn block_capacity(page_size: usize) -> usize {
    BlockList::<Point>::capacity(page_size)
}

/// `⌈log₂ v⌉`, at least 1.
fn ceil_log2(v: usize) -> usize {
    ((usize::BITS - (v.max(2) - 1).leading_zeros()) as usize).max(1)
}

/// Region capacities for a `levels`-deep scheme: `B·⌈log B⌉`,
/// `B·⌈log log B⌉`, …, one entry per region level (the bottom level is
/// always the basic PST). The sequence stops early once the iterated log
/// reaches 1 — a region of `B` points *is* a basic block.
pub fn region_caps(page_size: usize, levels: u32) -> Vec<usize> {
    let b = block_capacity(page_size);
    let mut caps = Vec::new();
    let mut l = ceil_log2(b);
    for _ in 1..levels {
        if l <= 1 {
            break;
        }
        caps.push(b * l);
        l = ceil_log2(l);
    }
    caps
}

/// Top-level region capacity of the two-level scheme: `B · ⌈log₂ B⌉`.
#[cfg_attr(not(test), allow(dead_code))]
pub fn region_capacity(page_size: usize) -> usize {
    block_capacity(page_size) * ceil_log2(block_capacity(page_size))
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct NodeRef {
    pub(crate) page: PageId,
    pub(crate) slot: u16,
}

#[derive(Debug, Clone)]
pub(crate) struct RegionRecord {
    pub(crate) split_x: i64,
    pub(crate) min_y_y: i64,
    pub(crate) left: NodeRef,
    pub(crate) right: NodeRef,
    pub(crate) own_cnt: u16,
    pub(crate) left_cnt: u16,
    pub(crate) right_cnt: u16,
    pub(crate) left_is_leaf: bool,
    pub(crate) right_is_leaf: bool,
    pub(crate) x_list: BlockList<Point>,
    pub(crate) y_list: BlockList<Point>,
    pub(crate) right_y_list: BlockList<Point>,
    pub(crate) a_list: BlockList<SEntry>,
    pub(crate) s_list: BlockList<SEntry>,
    pub(crate) inner_root: PageId,
    pub(crate) inner_n: u64,
    pub(crate) inner_is_region: bool,
    pub(crate) u_buf: PageId,
}

pub(crate) fn decode_record(page: &[u8], slot: u16) -> Result<RegionRecord> {
    let offset = PAGE_HEADER + RECORD_LEN * slot as usize;
    let mut r = PageReader::new(&page[offset..offset + RECORD_LEN]);
    let split_x = r.get_i64()?;
    let min_y_y = r.get_i64()?;
    let left = NodeRef { page: PageId(r.get_u64()?), slot: r.get_u16()? };
    let right = NodeRef { page: PageId(r.get_u64()?), slot: r.get_u16()? };
    let own_cnt = r.get_u16()?;
    let left_cnt = r.get_u16()?;
    let right_cnt = r.get_u16()?;
    let flags = r.get_u8()?;
    Ok(RegionRecord {
        split_x,
        min_y_y,
        left,
        right,
        own_cnt,
        left_cnt,
        right_cnt,
        left_is_leaf: flags & 1 != 0,
        right_is_leaf: flags & 2 != 0,
        x_list: BlockList::decode(&mut r)?,
        y_list: BlockList::decode(&mut r)?,
        right_y_list: BlockList::decode(&mut r)?,
        a_list: BlockList::decode(&mut r)?,
        s_list: BlockList::decode(&mut r)?,
        inner_root: PageId(r.get_u64()?),
        inner_n: r.get_u64()?,
        inner_is_region: r.get_u8()? != 0,
        u_buf: PageId(r.get_u64()?),
    })
}

/// Re-encodes a region record (used by the dynamic structure's partial
/// rebuilds; the writer must be positioned at the record's start).
pub(crate) fn encode_record(w: &mut PageWriter<'_>, rec: &RegionRecord) -> Result<()> {
    w.put_i64(rec.split_x)?;
    w.put_i64(rec.min_y_y)?;
    for child in [rec.left, rec.right] {
        w.put_u64(child.page.0)?;
        w.put_u16(child.slot)?;
    }
    w.put_u16(rec.own_cnt)?;
    w.put_u16(rec.left_cnt)?;
    w.put_u16(rec.right_cnt)?;
    w.put_u8(u8::from(rec.left_is_leaf) | (u8::from(rec.right_is_leaf) << 1))?;
    rec.x_list.encode(w)?;
    rec.y_list.encode(w)?;
    rec.right_y_list.encode(w)?;
    rec.a_list.encode(w)?;
    rec.s_list.encode(w)?;
    w.put_u64(rec.inner_root.0)?;
    w.put_u64(rec.inner_n)?;
    w.put_u8(u8::from(rec.inner_is_region))?;
    w.put_u64(rec.u_buf.0)
}

/// Decoded page header (dynamic-structure bookkeeping).
#[derive(Debug, Clone, Copy)]
pub(crate) struct PageHeaderInfo {
    pub(crate) count: u16,
    pub(crate) churn: u32,
    pub(crate) subtree_n: u64,
    pub(crate) u_page: PageId,
}

pub(crate) fn decode_header(page: &[u8]) -> Result<PageHeaderInfo> {
    let mut r = PageReader::new(page);
    let count = r.get_u16()?;
    r.skip(2)?;
    let churn = r.get_u32()?;
    let subtree_n = r.get_u64()?;
    let u_page = PageId(r.get_u64()?);
    Ok(PageHeaderInfo { count, churn, subtree_n, u_page })
}

pub(crate) fn encode_header(w: &mut PageWriter<'_>, h: &PageHeaderInfo) -> Result<()> {
    w.put_u16(h.count)?;
    w.put_u16(0)?;
    w.put_u32(h.churn)?;
    w.put_u64(h.subtree_n)?;
    w.put_u64(h.u_page.0)?;
    w.skip(PAGE_HEADER - 2 - 2 - 4 - 8 - 8)
}

/// A logged update: insert or delete of a point, stamped with a global
/// sequence number so merges can resolve op order across buffer levels
/// (deeper buffers hold older ops, but the stamp makes it explicit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateRec {
    /// `false` = insert, `true` = delete.
    pub is_delete: bool,
    /// Global sequence stamp (monotone per structure).
    pub seq: u64,
    /// The point being inserted or deleted.
    pub p: Point,
}

impl Record for UpdateRec {
    const ENCODED_LEN: usize = 1 + 8 + Point::ENCODED_LEN;

    fn encode(&self, w: &mut PageWriter<'_>) -> Result<()> {
        w.put_u8(u8::from(self.is_delete))?;
        w.put_u64(self.seq)?;
        self.p.encode(w)
    }

    fn decode(r: &mut PageReader<'_>) -> Result<Self> {
        Ok(UpdateRec { is_delete: r.get_u8()? != 0, seq: r.get_u64()?, p: Point::decode(r)? })
    }
}

/// Updates that fit in one buffer page.
pub(crate) fn buffer_capacity(page_size: usize) -> usize {
    (page_size - 2) / UpdateRec::ENCODED_LEN
}

/// Reads a buffer page: `[count u16][UpdateRec * count]`.
pub(crate) fn read_buffer(store: &PageStore, id: PageId) -> Result<Vec<UpdateRec>> {
    let page = store.read(id)?;
    let mut r = PageReader::new(&page);
    let count = r.get_u16()? as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(UpdateRec::decode(&mut r)?);
    }
    Ok(out)
}

/// Writes a buffer page.
pub(crate) fn write_buffer(store: &PageStore, id: PageId, recs: &[UpdateRec]) -> Result<()> {
    let mut buf = vec![0u8; store.page_size()];
    let used = {
        let mut w = PageWriter::new(&mut buf);
        w.put_u16(recs.len() as u16)?;
        for rec in recs {
            rec.encode(&mut w)?;
        }
        w.position()
    };
    store.write(id, &buf[..used])
}

/// Handle to an inner structure: a basic PST (`is_region == false`) or a
/// nested region tree.
#[derive(Debug, Clone, Copy)]
pub(crate) struct InnerHandle {
    pub(crate) root: PageId,
    pub(crate) n: u64,
    pub(crate) is_region: bool,
}

/// Builds a region tree (or a basic PST when `caps` is exhausted) over
/// `points`, returning its handle.
pub(crate) fn build_region_tree(
    store: &PageStore,
    points: &[Point],
    caps: &[usize],
) -> Result<InnerHandle> {
    let page_size = store.page_size();
    if caps.is_empty() {
        let mem = MemPst::build(points, points_capacity(page_size));
        let core = build_external(store, &mem, CacheMode::FullPath)?;
        return Ok(InnerHandle { root: core.root_page, n: core.n, is_region: false });
    }
    let r_cap = caps[0];
    let b = block_capacity(page_size);
    let mem = MemPst::build(points, r_cap);

    // Pagination of this level's tree.
    let (pages, node_loc) = crate::build::paginate(&mem, skeletal_capacity(page_size));
    let page_ids: Vec<PageId> = pages.iter().map(|_| store.alloc()).collect::<Result<_>>()?;

    // Per-region lists and inner structures.
    let n_nodes = mem.nodes.len();
    let mut x_sorted: Vec<Vec<Point>> = Vec::with_capacity(n_nodes);
    for node in &mem.nodes {
        let mut xs = node.points.clone();
        xs.sort_unstable_by(|a, c| cmp_x(c, a));
        x_sorted.push(xs);
    }
    let mut x_lists = Vec::with_capacity(n_nodes);
    let mut y_lists = Vec::with_capacity(n_nodes);
    let mut inners: Vec<InnerHandle> = Vec::with_capacity(n_nodes);
    for (node, xs) in mem.nodes.iter().zip(&x_sorted) {
        x_lists.push(BlockList::build(store, xs)?);
        // Node points are already descending by y-key.
        y_lists.push(BlockList::build(store, &node.points)?);
        inners.push(build_region_tree(store, &node.points, &caps[1..])?);
    }

    // A/S caches from in-page ancestor chains (first blocks only).
    let mut a_lists: Vec<BlockList<SEntry>> = vec![BlockList::empty(); n_nodes];
    let mut s_lists: Vec<BlockList<SEntry>> = vec![BlockList::empty(); n_nodes];
    // Chain entries are tagged with the ancestor's *in-page* depth (the
    // chain resets at page boundaries, so its length is exactly that),
    // matching the in-page counter the query maintains.
    struct Frame {
        node: usize,
        chain: Vec<(usize, u16, bool)>,
    }
    let mut stack = vec![Frame { node: 0, chain: Vec::new() }];
    while let Some(Frame { node, chain }) = stack.pop() {
        let mut a: Vec<SEntry> = Vec::new();
        let mut s: Vec<SEntry> = Vec::new();
        for &(anc, anc_depth, went_left) in &chain {
            a.extend(x_sorted[anc].iter().take(b).map(|&p| SEntry { p, depth: anc_depth }));
            if went_left {
                let sib = mem.nodes[anc].right;
                s.extend(
                    mem.nodes[sib].points.iter().take(b).map(|&p| SEntry { p, depth: anc_depth }),
                );
            }
        }
        a.sort_unstable_by(|x, y| cmp_x(&y.p, &x.p));
        s.sort_unstable_by(|x, y| crate::mem::cmp_y(&y.p, &x.p));
        a_lists[node] = BlockList::build(store, &a)?;
        s_lists[node] = BlockList::build(store, &s)?;

        let mn = &mem.nodes[node];
        if mn.left != NONE {
            for (child, went_left) in [(mn.left, true), (mn.right, false)] {
                let chain = if node_loc[child].0 == node_loc[node].0 {
                    let mut c = chain.clone();
                    let inpage_depth = c.len() as u16;
                    c.push((node, inpage_depth, went_left));
                    c
                } else {
                    Vec::new()
                };
                stack.push(Frame { node: child, chain });
            }
        }
    }

    // Serialize.
    let mut buf = vec![0u8; page_size];
    for (page_idx, members) in pages.iter().enumerate() {
        let used = {
            let mut w = PageWriter::new(&mut buf);
            encode_header(
                &mut w,
                &PageHeaderInfo {
                    count: members.len() as u16,
                    churn: 0,
                    subtree_n: mem.nodes[members[0]].subtree_size,
                    u_page: NULL_PAGE,
                },
            )?;
            for &ni in members {
                let node = &mem.nodes[ni];
                w.put_i64(node.split.x)?;
                w.put_i64(node.points.last().map(|p| p.y).unwrap_or(0))?;
                if node.is_leaf() {
                    for _ in 0..2 {
                        w.put_u64(NULL_PAGE.0)?;
                        w.put_u16(0)?;
                    }
                } else {
                    for child in [node.left, node.right] {
                        let (p, s) = node_loc[child];
                        w.put_u64(page_ids[p].0)?;
                        w.put_u16(s)?;
                    }
                }
                w.put_u16(node.points.len() as u16)?;
                if node.is_leaf() {
                    w.put_u16(0)?;
                    w.put_u16(0)?;
                    w.put_u8(3)?;
                } else {
                    w.put_u16(mem.nodes[node.left].points.len() as u16)?;
                    w.put_u16(mem.nodes[node.right].points.len() as u16)?;
                    let flags = u8::from(mem.nodes[node.left].is_leaf())
                        | (u8::from(mem.nodes[node.right].is_leaf()) << 1);
                    w.put_u8(flags)?;
                }
                x_lists[ni].encode(&mut w)?;
                y_lists[ni].encode(&mut w)?;
                if node.is_leaf() {
                    BlockList::<Point>::empty().encode(&mut w)?;
                } else {
                    y_lists[node.right].encode(&mut w)?;
                }
                a_lists[ni].encode(&mut w)?;
                s_lists[ni].encode(&mut w)?;
                w.put_u64(inners[ni].root.0)?;
                w.put_u64(inners[ni].n)?;
                w.put_u8(u8::from(inners[ni].is_region))?;
                w.put_u64(NULL_PAGE.0)?;
            }
            w.position()
        };
        store.write(page_ids[page_idx], &buf[..used])?;
    }

    Ok(InnerHandle { root: page_ids[0], n: points.len() as u64, is_region: true })
}

/// Runs a 2-sided query against a region tree rooted at `root_page`,
/// appending to `results`/`counters` (recursive across levels). Buffered
/// updates encountered along the way (super-node `U` buffers on visited
/// pages, the corner region's `u` buffer) are appended to `pending` for
/// the caller to merge; static structures have no buffers, so it stays
/// empty for them.
pub(crate) fn run_region_query(
    store: &PageStore,
    root_page: PageId,
    q: TwoSided,
    results: &mut Vec<Point>,
    counters: &mut QueryCounters,
    pending: &mut Vec<UpdateRec>,
) -> Result<()> {
    // Nested region levels open nested spans; each sets its own B.
    let _span = pc_obs::span!("pst_region");
    pc_obs::set_block_capacity(block_capacity(store.page_size()) as u64);
    // In-page ancestor info by depth: X-list; sibling info by depth:
    // (Y-list, count, is_leaf, skeletal ref).
    let mut anc: HashMap<u16, BlockList<Point>> = HashMap::new();
    let mut sib: HashMap<u16, (BlockList<Point>, u16, bool, NodeRef)> = HashMap::new();

    let mut cur_page_id = root_page;
    let mut page = {
        let _lvl = pc_obs::span!("level", 0u64);
        store.read(cur_page_id)?
    };
    counters.skeletal += 1;
    collect_page_buffer(store, &page, counters, pending)?;
    let mut slot = 0u16;
    // In-page depth of the current node; matches the cache tags.
    let mut depth = 0u16;
    loop {
        let rec = decode_record(&page, slot)?;
        let is_leaf = rec.left.page.is_null();
        let is_corner = rec.own_cnt == 0 || rec.min_y_y < q.y0 || is_leaf;
        if is_corner {
            let mut ctx =
                TlCtx { store, q, b: block_capacity(store.page_size()), results, counters, pending };
            ctx.drain_caches_and_seed(&rec, &anc, &sib)?;
            if !rec.u_buf.is_null() {
                ctx.counters.cache_blocks += 1;
                let ops = read_buffer(store, rec.u_buf)?;
                ctx.pending.extend(ops);
            }
            // The corner region itself is answered by its inner structure.
            if rec.inner_n > 0 {
                if rec.inner_is_region {
                    run_region_query(store, rec.inner_root, q, results, counters, pending)?;
                } else {
                    let core = PstCore {
                        root_page: rec.inner_root,
                        n: rec.inner_n,
                        mode: CacheMode::FullPath,
                    };
                    let (pts, c) = run_two_sided(store, &core, q)?;
                    results.extend(pts);
                    counters.skeletal += c.skeletal;
                    counters.cache_blocks += c.cache_blocks;
                    counters.node_blocks += c.node_blocks;
                }
            }
            return Ok(());
        }

        let go_left = q.x0 <= rec.split_x;
        let next = if go_left { rec.left } else { rec.right };
        let crosses_page = next.page != cur_page_id;
        if crosses_page {
            // Segment exit: settle this page. The exit's own X-list and its
            // right sibling are read directly (the next segment's caches
            // restart below them).
            let mut ctx =
                TlCtx { store, q, b: block_capacity(store.page_size()), results, counters, pending };
            ctx.drain_caches_and_seed(&rec, &anc, &sib)?;
            ctx.scan_x_prefix(&rec.x_list, 0)?;
            if go_left && rec.right_cnt > 0 {
                ctx.visit_region(rec.right, true)?;
            }
            anc.clear();
            sib.clear();
            cur_page_id = next.page;
            page = {
                let _lvl = pc_obs::span!("level", counters.skeletal);
                store.read(cur_page_id)?
            };
            counters.skeletal += 1;
            collect_page_buffer(store, &page, counters, pending)?;
            slot = next.slot;
            depth = 0;
            continue;
        }
        anc.insert(depth, rec.x_list);
        if go_left && rec.right_cnt > 0 {
            sib.insert(depth, (rec.right_y_list, rec.right_cnt, rec.right_is_leaf, rec.right));
        }
        slot = next.slot;
        depth += 1;
    }
}

/// Reads a visited page's super-node buffer, if any, into `pending`.
fn collect_page_buffer(
    store: &PageStore,
    page: &[u8],
    counters: &mut QueryCounters,
    pending: &mut Vec<UpdateRec>,
) -> Result<()> {
    let header = decode_header(page)?;
    if !header.u_page.is_null() {
        counters.cache_blocks += 1;
        pending.extend(read_buffer(store, header.u_page)?);
    }
    Ok(())
}

/// Queries an [`InnerHandle`] (region tree or basic PST), returning any
/// buffered updates encountered for the caller to merge.
pub(crate) fn query_handle_buffered(
    store: &PageStore,
    handle: InnerHandle,
    q: TwoSided,
) -> Result<(Vec<Point>, Vec<UpdateRec>, QueryCounters)> {
    let mut results = Vec::new();
    let mut counters = QueryCounters::default();
    let mut pending = Vec::new();
    if handle.n == 0 {
        return Ok((results, pending, counters));
    }
    if handle.is_region {
        run_region_query(store, handle.root, q, &mut results, &mut counters, &mut pending)?;
    } else {
        let core = PstCore { root_page: handle.root, n: handle.n, mode: CacheMode::FullPath };
        let (pts, c) = run_two_sided(store, &core, q)?;
        results = pts;
        counters = c;
    }
    Ok((results, pending, counters))
}

/// Queries an [`InnerHandle`] (region tree or basic PST).
pub(crate) fn query_handle(
    store: &PageStore,
    handle: InnerHandle,
    q: TwoSided,
) -> Result<(Vec<Point>, QueryCounters)> {
    let (results, _pending, counters) = query_handle_buffered(store, handle, q)?;
    Ok((results, counters))
}

/// The two-level recursive PST (Theorem 4.3): optimal `O(log_B n + t/B)`
/// 2-sided queries in `O((n/B)·log log B)` disk blocks.
pub struct TwoLevelPst {
    pub(crate) root: InnerHandle,
}

impl TwoLevelPst {
    /// Builds the structure over `points`.
    pub fn build(store: &PageStore, points: &[Point]) -> Result<Self> {
        let caps = region_caps(store.page_size(), 2);
        Ok(TwoLevelPst { root: build_region_tree(store, points, &caps)? })
    }

    /// Number of indexed points.
    pub fn len(&self) -> u64 {
        self.root.n
    }

    /// True when no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.root.n == 0
    }

    /// Answers a 2-sided query.
    pub fn query(&self, store: &PageStore, q: TwoSided) -> Result<Vec<Point>> {
        Ok(self.query_counted(store, q)?.0)
    }

    /// Answers a 2-sided query with I/O counters.
    pub fn query_counted(
        &self,
        store: &PageStore,
        q: TwoSided,
    ) -> Result<(Vec<Point>, QueryCounters)> {
        query_handle(store, self.root, q)
    }
}

struct TlCtx<'a> {
    store: &'a PageStore,
    q: TwoSided,
    b: usize,
    results: &'a mut Vec<Point>,
    counters: &'a mut QueryCounters,
    pending: &'a mut Vec<UpdateRec>,
}

impl TlCtx<'_> {
    /// Scans an X-list prefix (descending x) starting at `skip` blocks,
    /// keeping points with `x >= x0` and stopping at the first failure.
    fn scan_x_prefix(&mut self, list: &BlockList<Point>, skip: usize) -> Result<u64> {
        let _scan = pc_obs::span!(output: "list_scan");
        let mut kept = 0u64;
        let mut blocks = list.blocks(self.store);
        for _ in 0..skip {
            if blocks.next().transpose()?.is_none() {
                return Ok(0);
            }
        }
        'scan: for block in blocks {
            self.counters.node_blocks += 1;
            for p in block? {
                if p.x < self.q.x0 {
                    break 'scan;
                }
                self.results.push(p);
                kept += 1;
            }
        }
        pc_obs::add_items(kept);
        Ok(kept)
    }

    /// Scans a Y-list prefix (descending y), keeping points with
    /// `y >= y0`. Returns the number kept.
    fn scan_y_prefix(&mut self, list: &BlockList<Point>, skip: usize, add: bool) -> Result<u64> {
        // `kept` counts qualifying points even when `add` is false (they
        // were already reported from an S-cache): the reads still produce
        // useful entries, so they are not wasteful.
        let _scan = pc_obs::span!(output: "list_scan");
        let mut kept = 0u64;
        let mut blocks = list.blocks(self.store);
        for _ in 0..skip {
            if blocks.next().transpose()?.is_none() {
                return Ok(0);
            }
        }
        'scan: for block in blocks {
            self.counters.node_blocks += 1;
            for p in block? {
                if p.y < self.q.y0 {
                    break 'scan;
                }
                if add {
                    self.results.push(p);
                }
                kept += 1;
            }
        }
        pc_obs::add_items(kept);
        Ok(kept)
    }

    /// Reads the node's A/S caches, applies the continuation rule, and
    /// seeds the region-level descendant traversal.
    fn drain_caches_and_seed(
        &mut self,
        rec: &RegionRecord,
        anc: &HashMap<u16, BlockList<Point>>,
        sib: &HashMap<u16, (BlockList<Point>, u16, bool, NodeRef)>,
    ) -> Result<()> {
        // A-cache: first blocks of ancestors' X-lists, descending x.
        let mut a_qualified: HashMap<u16, u64> = HashMap::new();
        {
            let _probe = pc_obs::span!("path_cache_probe");
            pc_obs::set_block_capacity(
                BlockList::<SEntry>::capacity(self.store.page_size()) as u64
            );
            let before = self.results.len();
            'a_scan: for block in rec.a_list.blocks(self.store) {
                self.counters.cache_blocks += 1;
                for e in block? {
                    if e.p.x < self.q.x0 {
                        break 'a_scan;
                    }
                    self.results.push(e.p);
                    *a_qualified.entry(e.depth).or_insert(0) += 1;
                }
            }
            pc_obs::add_items((self.results.len() - before) as u64);
        }
        for (d, cnt) in a_qualified {
            let list = anc.get(&d).expect("A entries come from recorded ancestors");
            let copied = (list.len() as usize).min(self.b) as u64;
            if cnt == copied && list.len() > copied {
                self.scan_x_prefix(list, 1)?;
            }
        }

        // S-cache: first blocks of siblings' Y-lists, descending y.
        let mut s_qualified: HashMap<u16, u64> = HashMap::new();
        {
            let _probe = pc_obs::span!("path_cache_probe");
            pc_obs::set_block_capacity(
                BlockList::<SEntry>::capacity(self.store.page_size()) as u64
            );
            let before = self.results.len();
            's_scan: for block in rec.s_list.blocks(self.store) {
                self.counters.cache_blocks += 1;
                for e in block? {
                    if e.p.y < self.q.y0 {
                        break 's_scan;
                    }
                    self.results.push(e.p);
                    *s_qualified.entry(e.depth).or_insert(0) += 1;
                }
            }
            pc_obs::add_items((self.results.len() - before) as u64);
        }
        for (d, cnt) in s_qualified {
            let (list, total, is_leaf, sref) =
                sib.get(&d).expect("S entries come from recorded siblings");
            let copied = (list.len() as usize).min(self.b) as u64;
            let mut qualified = cnt;
            if cnt == copied && list.len() > copied {
                qualified += self.scan_y_prefix(list, 1, true)?;
            }
            // Region fully inside the query: traverse its children.
            if qualified == u64::from(*total) && !is_leaf {
                self.seed_children(*sref)?;
            }
        }
        Ok(())
    }

    /// Reads a region's skeletal record just to launch traversal of its
    /// children (its own points were already reported).
    fn seed_children(&mut self, r: NodeRef) -> Result<()> {
        let page = self.store.read(r.page)?;
        self.counters.skeletal += 1;
        collect_page_buffer(self.store, &page, self.counters, self.pending)?;
        let rec = decode_record(&page, r.slot)?;
        for (child, cnt) in [(rec.left, rec.left_cnt), (rec.right, rec.right_cnt)] {
            if !child.page.is_null() && cnt > 0 {
                self.visit_region(child, true)?;
            }
        }
        Ok(())
    }

    /// Region-level descendant traversal: report the Y-prefix; recurse
    /// when the whole region qualified.
    fn visit_region(&mut self, r: NodeRef, add: bool) -> Result<()> {
        let mut stack = vec![r];
        while let Some(nref) = stack.pop() {
            let page = self.store.read(nref.page)?;
            self.counters.skeletal += 1;
            collect_page_buffer(self.store, &page, self.counters, self.pending)?;
            let rec = decode_record(&page, nref.slot)?;
            if rec.own_cnt == 0 {
                continue;
            }
            let kept = self.scan_y_prefix(&rec.y_list, 0, add)?;
            if kept == u64::from(rec.own_cnt) && !rec.left.page.is_null() {
                stack.push(rec.left);
                stack.push(rec.right);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(state: &mut u64, bound: i64) -> i64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        (*state % bound as u64) as i64
    }

    fn random_points(n: usize, domain: i64, seed: u64) -> Vec<Point> {
        let mut s = seed;
        (0..n)
            .map(|id| Point::new(xorshift(&mut s, domain), xorshift(&mut s, domain), id as u64))
            .collect()
    }

    fn brute(points: &[Point], q: TwoSided) -> Vec<u64> {
        let mut ids: Vec<u64> =
            points.iter().filter(|p| q.contains(p)).map(|p| p.id).collect();
        ids.sort_unstable();
        ids
    }

    fn ids(mut pts: Vec<Point>) -> Vec<u64> {
        let mut out: Vec<u64> = pts.drain(..).map(|p| p.id).collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn region_capacity_is_b_log_b() {
        // page 512: B = 20, ceil(log2 20) = 5 => 100
        assert_eq!(region_capacity(512), 100);
        // page 4096: B = 170, ceil(log2 170) = 8 => 1360
        assert_eq!(region_capacity(4096), 1360);
    }

    #[test]
    fn region_caps_iterate_the_log() {
        // B = 20: L1 = 5, L2 = 3, L3 = 2, L4 = 1 (stop).
        assert_eq!(region_caps(512, 2), vec![100]);
        assert_eq!(region_caps(512, 3), vec![100, 60]);
        assert_eq!(region_caps(512, 4), vec![100, 60, 40]);
        assert_eq!(region_caps(512, 9), vec![100, 60, 40]); // saturates
        assert_eq!(region_caps(512, 1), Vec::<usize>::new());
    }

    #[test]
    fn matches_brute_force() {
        let pts = random_points(5000, 20_000, 0x2222);
        let store = PageStore::in_memory(512);
        let pst = TwoLevelPst::build(&store, &pts).unwrap();
        let mut s = 0x55u64;
        for i in 0..150 {
            let q = TwoSided {
                x0: xorshift(&mut s, 22_000) - 1000,
                y0: xorshift(&mut s, 22_000) - 1000,
            };
            let res = pst.query(&store, q).unwrap();
            let want = brute(&pts, q);
            assert_eq!(res.len(), want.len(), "dup? q{i}={q:?}");
            assert_eq!(ids(res), want, "q{i}={q:?}");
        }
    }

    #[test]
    fn duplicates_and_edges() {
        let mut pts = Vec::new();
        for i in 0..1200u64 {
            pts.push(Point::new((i % 7) as i64 * 5, (i % 11) as i64 * 5, i));
        }
        let store = PageStore::in_memory(512);
        let pst = TwoLevelPst::build(&store, &pts).unwrap();
        for x0 in [-1, 0, 5, 15, 30, 31] {
            for y0 in [-1, 0, 25, 50, 51] {
                let q = TwoSided { x0, y0 };
                assert_eq!(ids(pst.query(&store, q).unwrap()), brute(&pts, q), "{q:?}");
            }
        }
    }

    #[test]
    fn empty_and_single_region() {
        let store = PageStore::in_memory(512);
        let pst = TwoLevelPst::build(&store, &[]).unwrap();
        assert!(pst.query(&store, TwoSided { x0: 0, y0: 0 }).unwrap().is_empty());
        // Fewer points than one region: everything sits in the root.
        let pts = random_points(50, 100, 3);
        let pst = TwoLevelPst::build(&store, &pts).unwrap();
        let q = TwoSided { x0: 40, y0: 40 };
        assert_eq!(ids(pst.query(&store, q).unwrap()), brute(&pts, q));
    }

    #[test]
    fn uses_less_space_than_full_path_caches() {
        // The asymptotic ordering is loglogB (two-level) < logB (segmented)
        // < log n (basic / Lemma 3.1). At practical block sizes the
        // two-level structure's constants (X+Y duplication, inner trees)
        // show its measured advantage against the basic scheme; the
        // experiment harness records the full picture (E14).
        let pts = random_points(30_000, 500_000, 0x3333);
        let store_basic = PageStore::in_memory(512);
        crate::build::BasicPst::build(&store_basic, &pts).unwrap();
        let store_two = PageStore::in_memory(512);
        TwoLevelPst::build(&store_two, &pts).unwrap();
        assert!(
            store_two.live_pages() < store_basic.live_pages(),
            "two-level {} !< basic {}",
            store_two.live_pages(),
            store_basic.live_pages()
        );
    }

    #[test]
    fn query_io_is_optimal_shape() {
        let pts = random_points(30_000, 500_000, 0x4444);
        let store = PageStore::in_memory(512);
        let pst = TwoLevelPst::build(&store, &pts).unwrap();
        let b = block_capacity(512) as u64;
        let mut s = 0x66u64;
        for _ in 0..60 {
            let q = TwoSided {
                x0: xorshift(&mut s, 500_000),
                y0: xorshift(&mut s, 500_000),
            };
            let (res, c) = pst.query_counted(&store, q).unwrap();
            let t = res.len() as u64;
            let allowed = 60 + 6 * (t / b + 1);
            assert!(c.total() <= allowed, "io={} t={t} ({c:?})", c.total());
        }
    }
}
