//! # pc-pst — external priority search trees with path caching
//!
//! This crate is the paper's primary contribution: a family of secondary-
//! memory priority search trees (PSTs) answering **2-sided** dominance
//! queries (`x ≥ x₀ ∧ y ≥ y₀`, Figure 1) and **3-sided** queries
//! (`x₁ ≤ x ≤ x₂ ∧ y ≥ y₀`), with the space/time trade-offs of the paper:
//!
//! | type | paper ref | query I/O | space (blocks) |
//! |------|-----------|-----------|----------------|
//! | [`NaivePst`] | [IKO] baseline | `O(log n + t/B)` | `O(n/B)` |
//! | [`BasicPst`] | Lemma 3.1 | `O(log_B n + t/B)` | `O((n/B)·log n)` |
//! | [`SegmentedPst`] | Theorem 3.2 | `O(log_B n + t/B)` | `O((n/B)·log B)` |
//! | [`TwoLevelPst`] | Theorem 4.3 | `O(log_B n + t/B)` | `O((n/B)·log log B)` |
//! | [`MultilevelPst`] | Theorem 4.4 | `O(log_B n + t/B + log* B)` | `O((n/B)·log* B)` |
//! | [`ThreeSidedPst`] | Theorems 3.3/4.5 | `O(log_B n + t/B)` | `O((n/B)·log² B)` |
//! | [`DynamicPst`] | Theorem 5.1 | `O(log_B n + t/B)` | `O((n/B)·log log B)` + buffers |
//!
//! ## The heap-of-regions decomposition (Figure 4)
//!
//! Following [IKO] and §3, the root holds the top `B` points by `y`; the
//! rest are split at the median `x` into two halves, recursively. Each node
//! is one disk block; the tree as a whole decomposes the plane into
//! `O(n/B)` rectangular regions. For a query with corner `(x₀, y₀)`:
//!
//! * the **corner node** is the region containing the corner;
//! * **ancestors** of the corner are cut by the query's left side — their
//!   points all satisfy `y ≥ y₀`, so they match iff `x ≥ x₀`;
//! * **right siblings** of the path lie wholly right of `x₀` — their points
//!   match iff `y ≥ y₀`;
//! * **descendants of siblings** are visited only when the parent's region
//!   is fully inside the query, so each visit is paid for by a full block
//!   of output.
//!
//! Reading each of the `O(log n)` ancestor/sibling blocks individually is
//! the naive structure's wasteful-I/O pathology; the cached variants
//! coalesce those points into per-node **A-lists** (ancestor points, sorted
//! by descending `x`) and **S-lists** (sibling points, descending `y`),
//! over the full path (Lemma 3.1) or per `log B`-sized path segment —
//! realized here as "within one skeletal page" (Theorem 3.2).
//!
//! ## Exactness with duplicate coordinates
//!
//! The paper assumes general position. We instead order points by the
//! strict total orders `(x, y, id)` and `(y, x, id)`; the query predicate
//! `x ≥ x₀` is exactly `(x, y, id) ≥ (x₀, −∞, −∞)`, so heap layering,
//! corner location, and prefix scans remain exact under arbitrary ties.
//!
//! ```
//! use pc_pagestore::{PageStore, Point};
//! use pc_pst::{SegmentedPst, TwoSided};
//!
//! let store = PageStore::in_memory(512);
//! let pts: Vec<Point> = (0..500).map(|i| Point::new(i, (i * 7) % 500, i as u64)).collect();
//! let pst = SegmentedPst::build(&store, &pts).unwrap();
//! let hits = pst.query(&store, TwoSided { x0: 400, y0: 400 }).unwrap();
//! assert!(hits.iter().all(|p| p.x >= 400 && p.y >= 400));
//! ```

mod build;
mod dynamic;
mod mem;
mod multilevel;
mod query;
mod repack;
mod three_sided;
mod two_level;

pub use build::{BasicPst, NaivePst, SegmentedPst};
pub use dynamic::{DynamicPst, DynamicThreeSidedPst};
pub use mem::TwoSided;
pub use multilevel::MultilevelPst;
pub use three_sided::{ThreeSided, ThreeSidedPst};
pub use two_level::TwoLevelPst;
