//! The 2-sided query engine shared by the naive, basic, and segmented
//! variants (§3 of the paper).

use std::collections::HashMap;

use pc_pagestore::layout::BlockList;
use pc_pagestore::search::partition_point;
use pc_pagestore::{PageId, PageStore, Point, Result};

use crate::build::{
    decode_record, points_capacity, read_points_page, CacheMode, PstCore, SEntry, SkeletalRecord,
};
use crate::mem::TwoSided;

/// I/O breakdown of one query, in page reads.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryCounters {
    /// Skeletal page reads (navigation).
    pub skeletal: u64,
    /// A-list / S-list block reads.
    pub cache_blocks: u64,
    /// Region (points page) reads: corner, ancestors, siblings,
    /// descendants.
    pub node_blocks: u64,
}

impl QueryCounters {
    /// Total page reads.
    pub fn total(&self) -> u64 {
        self.skeletal + self.cache_blocks + self.node_blocks
    }
}

/// Runs a 2-sided query against a built single-level structure.
pub fn run_two_sided(
    store: &PageStore,
    core: &PstCore,
    q: TwoSided,
) -> Result<(Vec<Point>, QueryCounters)> {
    let _span = pc_obs::span!(match core.mode {
        CacheMode::None => "pst2_naive",
        CacheMode::FullPath => "pst2_fullpath",
        CacheMode::InPage => "pst2_segmented",
    });
    pc_obs::set_block_capacity(points_capacity(store.page_size()) as u64);
    let mut ctx = Ctx {
        store,
        q,
        cap: points_capacity(store.page_size()) as u16,
        results: Vec::new(),
        counters: QueryCounters::default(),
    };
    // Right-sibling info per path depth: (points page, count).
    let mut sib: HashMap<u16, (PageId, u16)> = HashMap::new();

    let mut cur_page_id = core.root_page;
    let mut page = {
        let _lvl = pc_obs::span!("level", 0u64);
        store.read(cur_page_id)?
    };
    ctx.counters.skeletal += 1;
    let mut slot = 0u16;
    let mut depth = 0u16;
    loop {
        let rec = decode_record(&page, slot)?;
        let is_leaf = rec.left.page.is_null();
        let is_corner = rec.own_cnt == 0 || rec.min_y.y < q.y0 || is_leaf;
        if is_corner {
            match core.mode {
                CacheMode::None => {
                    ctx.read_own_filtered(&rec, true)?;
                }
                CacheMode::FullPath | CacheMode::InPage => {
                    ctx.drain_caches_and_seed(&rec, &sib)?;
                    ctx.read_own_filtered(&rec, true)?;
                }
            }
            break;
        }

        // v is a proper ancestor of the corner: all its points satisfy
        // y >= y0, and the path continues below.
        let go_left = q.x0 <= rec.split.x;
        if go_left && rec.right_cnt > 0 {
            sib.insert(depth, (rec.right_pts, rec.right_cnt));
        }
        let next = if go_left { rec.left } else { rec.right };
        let crosses_page = next.page != cur_page_id;

        match core.mode {
            CacheMode::None => {
                // Read every path node and every right sibling directly —
                // the Figure 3 pathology, one block each.
                ctx.read_own_filtered(&rec, true)?;
                if go_left && rec.right_cnt > 0 {
                    ctx.traverse(rec.right_pts, true)?;
                }
            }
            CacheMode::FullPath => {
                // Everything is served by the corner's full-path caches.
            }
            CacheMode::InPage => {
                if crosses_page {
                    // Segment exit: settle this page's ancestors/siblings.
                    // The exit's own right sibling belongs to no S-list
                    // (the next segment's caches restart below it), so it
                    // is read directly — one paid I/O per segment.
                    ctx.drain_caches_and_seed(&rec, &sib)?;
                    ctx.read_own_filtered(&rec, false)?;
                    if go_left && rec.right_cnt > 0 {
                        ctx.traverse(rec.right_pts, true)?;
                    }
                }
            }
        }

        if crosses_page {
            cur_page_id = next.page;
            let _lvl = pc_obs::span!("level", ctx.counters.skeletal);
            page = store.read(cur_page_id)?;
            ctx.counters.skeletal += 1;
        }
        slot = next.slot;
        depth += 1;
    }
    Ok((ctx.results, ctx.counters))
}

struct Ctx<'a> {
    store: &'a PageStore,
    q: TwoSided,
    cap: u16,
    results: Vec<Point>,
    counters: QueryCounters,
}

impl Ctx<'_> {
    /// Reads a path node's own block and keeps the qualifying points.
    ///
    /// `output_scan` distinguishes reads whose cost the paper amortizes
    /// against the output (the corner's block, and every per-ancestor read
    /// the naive variant makes — the Figure 3 pathology) from the cached
    /// variants' segment-exit reads, which are part of the fixed
    /// `O(1)`-per-segment search overhead and therefore never wasteful.
    fn read_own_filtered(&mut self, rec: &SkeletalRecord, output_scan: bool) -> Result<()> {
        if rec.own_cnt == 0 {
            return Ok(());
        }
        let _scan = if output_scan {
            pc_obs::span!(output: "node_block")
        } else {
            pc_obs::span!("node_block")
        };
        let before = self.results.len();
        let pp = read_points_page(self.store, rec.own_pts)?;
        self.counters.node_blocks += 1;
        // Points are descending by y-key, so the y-qualifiers are a prefix.
        let cut = partition_point(&pp.points, |p| p.y >= self.q.y0);
        self.results.extend(pp.points[..cut].iter().filter(|p| p.x >= self.q.x0));
        pc_obs::add_items((self.results.len() - before) as u64);
        Ok(())
    }

    /// Reads the node's A- and S-lists (answer prefixes), then seeds the
    /// descendant traversal for every sibling whose points all qualified.
    fn drain_caches_and_seed(
        &mut self,
        rec: &SkeletalRecord,
        sib: &HashMap<u16, (PageId, u16)>,
    ) -> Result<()> {
        // A-list: descending x; prefix with x >= x0 qualifies (covered
        // ancestors are all above the corner, so y >= y0 holds).
        let mut qualified: HashMap<u16, u16> = HashMap::new();
        {
            // S-blocks hold the fewer entries per page, so classifying both
            // scans against that capacity never flags a full A-block as
            // wasteful.
            let _probe = pc_obs::span!("path_cache_probe");
            pc_obs::set_block_capacity(BlockList::<SEntry>::capacity(self.store.page_size()) as u64);
            let before = self.results.len();
            'a_scan: for block in rec.a_list.blocks(self.store) {
                self.counters.cache_blocks += 1;
                for p in block? {
                    if p.x < self.q.x0 {
                        break 'a_scan;
                    }
                    self.results.push(p);
                }
            }
            // S-list: descending y; prefix with y >= y0 qualifies (siblings
            // lie wholly right of x0). Count per source depth for the
            // descent rule.
            's_scan: for block in rec.s_list.blocks(self.store) {
                self.counters.cache_blocks += 1;
                for e in block? {
                    if e.p.y < self.q.y0 {
                        break 's_scan;
                    }
                    self.results.push(e.p);
                    *qualified.entry(e.depth).or_insert(0) += 1;
                }
            }
            pc_obs::add_items((self.results.len() - before) as u64);
        }
        // Descend into a sibling's children only when its region is fully
        // inside the query (§3's paid-for rule). Underfull nodes are leaves
        // by construction, so only full blocks can have children.
        for (d, cnt) in qualified {
            let &(pts, total) = sib.get(&d).expect("S entries come from recorded siblings");
            if cnt == total && total == self.cap {
                self.traverse(pts, false)?;
            }
        }
        Ok(())
    }

    fn traverse(&mut self, pts_page: PageId, add: bool) -> Result<()> {
        traverse_descendants(self.store, pts_page, add, self.q.y0, &mut self.results, &mut self.counters)
    }
}

/// Top-down descendant traversal (Figure 4): visit a node, keep its points
/// with `y >= y0`, and recurse only when *all* points qualified. With
/// `add = false` the node's points were already reported (from an S-list);
/// the read only fetches its child links. Shared by the 2-sided and
/// 3-sided engines — in both, visited subtrees lie wholly inside the
/// query's x-range, so only the y-filter applies.
pub(crate) fn traverse_descendants(
    store: &PageStore,
    pts_page: PageId,
    add: bool,
    y0: i64,
    results: &mut Vec<Point>,
    counters: &mut QueryCounters,
) -> Result<()> {
    let _span = pc_obs::span!(output: "traverse");
    let before = results.len();
    let r = traverse_descendants_inner(store, pts_page, add, y0, results, counters);
    pc_obs::add_items((results.len() - before) as u64);
    r
}

fn traverse_descendants_inner(
    store: &PageStore,
    pts_page: PageId,
    add: bool,
    y0: i64,
    results: &mut Vec<Point>,
    counters: &mut QueryCounters,
) -> Result<()> {
    let mut stack = vec![(pts_page, add)];
    while let Some((page_id, add)) = stack.pop() {
        let pp = read_points_page(store, page_id)?;
        counters.node_blocks += 1;
        // Points are descending by y-key, so the y-qualifiers are a prefix.
        let cut = partition_point(&pp.points, |p| p.y >= y0);
        if add {
            results.extend_from_slice(&pp.points[..cut]);
        }
        if cut == pp.points.len() && !pp.points.is_empty() {
            if !pp.left_pts.is_null() && pp.left_cnt > 0 {
                stack.push((pp.left_pts, true));
            }
            if !pp.right_pts.is_null() && pp.right_cnt > 0 {
                stack.push((pp.right_pts, true));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{BasicPst, NaivePst, SegmentedPst};
    use pc_pagestore::PageStore;

    fn xorshift(state: &mut u64, bound: i64) -> i64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        (*state % bound as u64) as i64
    }

    fn random_points(n: usize, domain: i64, seed: u64) -> Vec<Point> {
        let mut s = seed;
        (0..n)
            .map(|id| Point::new(xorshift(&mut s, domain), xorshift(&mut s, domain), id as u64))
            .collect()
    }

    fn brute(points: &[Point], q: TwoSided) -> Vec<u64> {
        let mut ids: Vec<u64> =
            points.iter().filter(|p| q.contains(p)).map(|p| p.id).collect();
        ids.sort_unstable();
        ids
    }

    fn ids(mut pts: Vec<Point>) -> Vec<u64> {
        let mut out: Vec<u64> = pts.drain(..).map(|p| p.id).collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn all_variants_match_brute_force() {
        let pts = random_points(3000, 10_000, 0xc0ffee);
        let store = PageStore::in_memory(512);
        let naive = NaivePst::build(&store, &pts).unwrap();
        let basic = BasicPst::build(&store, &pts).unwrap();
        let seg = SegmentedPst::build(&store, &pts).unwrap();
        let mut s = 0x77u64;
        for i in 0..150 {
            let q = TwoSided {
                x0: xorshift(&mut s, 11_000) - 500,
                y0: xorshift(&mut s, 11_000) - 500,
            };
            let want = brute(&pts, q);
            let rn = naive.query(&store, q).unwrap();
            assert_eq!(rn.len(), want.len(), "naive dup? q{i}={q:?}");
            assert_eq!(ids(rn), want, "naive q{i}={q:?}");
            let rb = basic.query(&store, q).unwrap();
            assert_eq!(rb.len(), want.len(), "basic dup? q{i}={q:?}");
            assert_eq!(ids(rb), want, "basic q{i}={q:?}");
            let rs = seg.query(&store, q).unwrap();
            assert_eq!(rs.len(), want.len(), "segmented dup? q{i}={q:?}");
            assert_eq!(ids(rs), want, "segmented q{i}={q:?}");
        }
    }

    #[test]
    fn duplicate_heavy_input_is_exact() {
        // Points stacked on few coordinates; boundary queries hit ties.
        let mut pts = Vec::new();
        for i in 0..900u64 {
            pts.push(Point::new((i % 3) as i64 * 10, (i % 5) as i64 * 10, i));
        }
        let store = PageStore::in_memory(512);
        let seg = SegmentedPst::build(&store, &pts).unwrap();
        let naive = NaivePst::build(&store, &pts).unwrap();
        for x0 in [-1, 0, 5, 10, 20, 21] {
            for y0 in [-1, 0, 10, 25, 40, 41] {
                let q = TwoSided { x0, y0 };
                let want = brute(&pts, q);
                assert_eq!(ids(seg.query(&store, q).unwrap()), want, "{q:?}");
                assert_eq!(ids(naive.query(&store, q).unwrap()), want, "{q:?}");
            }
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let store = PageStore::in_memory(512);
        let pst = SegmentedPst::build(&store, &[]).unwrap();
        assert!(pst.is_empty());
        assert!(pst.query(&store, TwoSided { x0: 0, y0: 0 }).unwrap().is_empty());

        let one = vec![Point::new(5, 5, 1)];
        let pst = SegmentedPst::build(&store, &one).unwrap();
        assert_eq!(pst.query(&store, TwoSided { x0: 5, y0: 5 }).unwrap().len(), 1);
        assert_eq!(pst.query(&store, TwoSided { x0: 6, y0: 5 }).unwrap().len(), 0);
    }

    #[test]
    fn cached_variants_meet_optimal_io_bound() {
        let pts = random_points(20_000, 100_000, 0xf00d);
        let store = PageStore::in_memory(512);
        let basic = BasicPst::build(&store, &pts).unwrap();
        let seg = SegmentedPst::build(&store, &pts).unwrap();
        let b = points_capacity(512) as u64; // 20
        // log_B n with B=20, n=20k: ~3.3 skeletal pages.
        let mut s = 0xabcdu64;
        for _ in 0..60 {
            let q = TwoSided {
                x0: xorshift(&mut s, 100_000),
                y0: xorshift(&mut s, 100_000),
            };
            for (name, (res, c)) in [
                ("basic", basic.query_counted(&store, q).unwrap()),
                ("segmented", seg.query_counted(&store, q).unwrap()),
            ] {
                let t = res.len() as u64;
                let logb_n = 5u64;
                let allowed = 6 * logb_n + 5 * (t / b + 1);
                assert!(
                    c.total() <= allowed,
                    "{name}: io={} t={t} allowed={allowed} ({c:?})",
                    c.total()
                );
            }
        }
    }

    #[test]
    fn naive_pays_the_log_n_tax_on_small_outputs() {
        // Large n, t = 0, corner at the bottom of the rightmost path: the
        // naive structure reads every one of the ~log2(n/B) path blocks,
        // while the segmented one touches ~3 reads per skeletal page
        // (log_B n pages). Requires pages large enough for the skeletal
        // height h to beat the per-segment constant (4096 => h = 5).
        let pts = random_points(200_000, 1_000_000, 0xbeef);
        let store = PageStore::in_memory(4096);
        let naive = NaivePst::build(&store, &pts).unwrap();
        let seg = SegmentedPst::build(&store, &pts).unwrap();
        let mut s = 0x1234u64;
        let mut naive_total = 0u64;
        let mut seg_total = 0u64;
        for _ in 0..20 {
            // Just beyond the domain: empty output, deepest corner.
            let q = TwoSided { x0: 1_000_001 + xorshift(&mut s, 100), y0: 0 };
            let (rn, cn) = naive.query_counted(&store, q).unwrap();
            let (rs, cs) = seg.query_counted(&store, q).unwrap();
            assert!(rn.is_empty() && rs.is_empty());
            naive_total += cn.total();
            seg_total += cs.total();
        }
        assert!(
            naive_total > seg_total + seg_total / 3,
            "expected naive ({naive_total}) to clearly exceed segmented ({seg_total})"
        );
    }
}
