//! van Emde Boas repacking of the built PST variants.
//!
//! See [`pc_pagestore::repack`] for the overall scheme. The single-level
//! structures (naive / Lemma 3.1 / Theorem 3.2) have skeletal pages that
//! form a proper tree; each record owns exactly one points page plus its
//! A/S cache chains, all attached to the record's skeletal page. Points
//! pages embed their children's page ids (the descendant traversal walks
//! them without touching skeletal pages), so they are re-encoded with
//! remapped links rather than copied raw.
//!
//! The recursive region schemes (Theorems 4.3/4.4) add per-record X/Y
//! lists, update buffers, and a nested inner structure — another region
//! tree or a basic PST. Inner structures are collected as separate layout
//! roots after their owning tree, so each stays contiguous. A record's
//! `right_y_list` aliases the right child's own Y-list: its pages are
//! owned (and copied) by the child's record, so it is skipped during
//! collection but still remapped during rewrite.

use std::collections::{HashSet, VecDeque};

use pc_pagestore::codec::{PageReader, PageWriter};
use pc_pagestore::layout::BlockList;
use pc_pagestore::repack::{
    chain_pages, copy_chain, copy_raw, ensure_quiesced, PageGraph, Relocation,
};
use pc_pagestore::{PageId, PageStore, Record, Result};

use crate::build::{
    decode_record, read_points_page, BasicPst, CacheMode, NaivePst, PstCore, SegmentedPst,
};
use crate::multilevel::MultilevelPst;
use crate::two_level::{
    decode_header, encode_header, encode_record, InnerHandle, NodeRef, PageHeaderInfo,
    RegionRecord, TwoLevelPst,
};

impl PstCore {
    /// Records every page of this structure into `graph`: the skeletal
    /// tree with, per record, its points page and A/S cache chains.
    pub fn collect_pages(&self, store: &PageStore, graph: &mut PageGraph) -> Result<()> {
        let Some(root_idx) = graph.add_root(self.root_page) else {
            return Ok(());
        };
        let mut queue = VecDeque::from([(self.root_page, root_idx)]);
        while let Some((pid, idx)) = queue.pop_front() {
            let page = store.read(pid)?;
            let count = PageReader::new(&page).get_u16()? as usize;
            for slot in 0..count {
                let rec = decode_record(&page, slot as u16)?;
                graph.attach(idx, &[rec.own_pts]);
                graph.attach(idx, &chain_pages(store, rec.a_list.head())?);
                graph.attach(idx, &chain_pages(store, rec.s_list.head())?);
                for child in [rec.left, rec.right] {
                    if !child.page.is_null() && child.page != pid {
                        if let Some(child_idx) = graph.add_child(idx, child.page) {
                            queue.push_back((child.page, child_idx));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Re-encodes every page into `dst` at its relocated id, mapping all
    /// embedded page ids through `map`. Returns the relocated core.
    pub fn rewrite_into(
        &self,
        src: &PageStore,
        dst: &PageStore,
        map: &Relocation,
    ) -> Result<PstCore> {
        let mut visited = HashSet::new();
        let mut stack = vec![self.root_page];
        let mut buf = vec![0u8; src.page_size()];
        while let Some(pid) = stack.pop() {
            if !visited.insert(pid.0) {
                continue;
            }
            let page = src.read(pid)?;
            let count = PageReader::new(&page).get_u16()? as usize;
            let used = {
                let mut w = PageWriter::new(&mut buf);
                w.put_u16(count as u16)?;
                for slot in 0..count {
                    let rec = decode_record(&page, slot as u16)?;
                    // Mirror of build_external's record serialization.
                    rec.split.encode(&mut w)?;
                    rec.min_y.encode(&mut w)?;
                    for child in [rec.left, rec.right] {
                        w.put_u64(map.get(child.page)?.0)?;
                        w.put_u16(child.slot)?;
                    }
                    w.put_u64(map.get(rec.own_pts)?.0)?;
                    w.put_u16(rec.own_cnt)?;
                    w.put_u64(map.get(rec.left_pts)?.0)?;
                    w.put_u16(rec.left_cnt)?;
                    w.put_u64(map.get(rec.right_pts)?.0)?;
                    w.put_u16(rec.right_cnt)?;
                    relocate(&rec.a_list, map)?.encode(&mut w)?;
                    relocate(&rec.s_list, map)?.encode(&mut w)?;
                }
                w.position()
            };
            for slot in 0..count {
                let rec = decode_record(&page, slot as u16)?;
                // Every node appears in exactly one record, so each points
                // page is rewritten exactly once here.
                rewrite_points_page(src, dst, rec.own_pts, map)?;
                copy_chain(src, dst, rec.a_list.head(), map)?;
                copy_chain(src, dst, rec.s_list.head(), map)?;
                for child in [rec.left, rec.right] {
                    if !child.page.is_null() && child.page != pid {
                        stack.push(child.page);
                    }
                }
            }
            dst.write(map.get(pid)?, &buf[..used])?;
        }
        Ok(PstCore { root_page: map.get(self.root_page)?, n: self.n, mode: self.mode })
    }

    /// Rewrites the whole structure into `dst` in van Emde Boas page order
    /// and returns the relocated core. Both stores must be quiesced.
    pub fn repack(&self, src: &PageStore, dst: &PageStore) -> Result<PstCore> {
        ensure_quiesced(src)?;
        ensure_quiesced(dst)?;
        let mut graph = PageGraph::new();
        self.collect_pages(src, &mut graph)?;
        let reloc = Relocation::alloc_in(&graph.veb_order(), dst)?;
        self.rewrite_into(src, dst, &reloc)
    }
}

/// Copies one points page, remapping the embedded child links (the
/// descendant traversal follows them without touching skeletal pages).
fn rewrite_points_page(
    src: &PageStore,
    dst: &PageStore,
    id: PageId,
    map: &Relocation,
) -> Result<()> {
    let pp = read_points_page(src, id)?;
    let mut buf = vec![0u8; src.page_size()];
    let used = {
        let mut w = PageWriter::new(&mut buf);
        w.put_u16(pp.points.len() as u16)?;
        w.put_u64(map.get(pp.left_pts)?.0)?;
        w.put_u64(map.get(pp.right_pts)?.0)?;
        w.put_u16(pp.left_cnt)?;
        w.put_u16(pp.right_cnt)?;
        for p in &pp.points {
            p.encode(&mut w)?;
        }
        w.position()
    };
    dst.write(map.get(id)?, &buf[..used])
}

fn relocate<R: Record>(list: &BlockList<R>, map: &Relocation) -> Result<BlockList<R>> {
    Ok(list.with_head(map.get(list.head())?))
}

macro_rules! variant_repack {
    ($name:ident) => {
        impl $name {
            /// Rewrites the structure into `dst` in van Emde Boas page
            /// order and returns the relocated handle. Both stores must be
            /// quiesced.
            pub fn repack(&self, src: &PageStore, dst: &PageStore) -> Result<Self> {
                Ok($name { core: self.core.repack(src, dst)? })
            }
        }
    };
}

variant_repack!(NaivePst);
variant_repack!(BasicPst);
variant_repack!(SegmentedPst);

impl InnerHandle {
    /// Views a basic-PST inner structure as a [`PstCore`] (inner PSTs are
    /// always built with full-path caches; the mode does not affect
    /// layout).
    fn as_core(&self) -> PstCore {
        PstCore { root_page: self.root, n: self.n, mode: CacheMode::FullPath }
    }

    /// Records every page of this inner structure into `graph`.
    pub(crate) fn collect_pages(&self, store: &PageStore, graph: &mut PageGraph) -> Result<()> {
        if self.is_region {
            collect_region(store, self.root, graph)
        } else {
            self.as_core().collect_pages(store, graph)
        }
    }

    /// Re-encodes every page into `dst` at its relocated id.
    pub(crate) fn rewrite_into(
        &self,
        src: &PageStore,
        dst: &PageStore,
        map: &Relocation,
    ) -> Result<InnerHandle> {
        if self.is_region {
            rewrite_region(src, dst, self.root, map)?;
        } else {
            self.as_core().rewrite_into(src, dst, map)?;
        }
        Ok(InnerHandle { root: map.get(self.root)?, n: self.n, is_region: self.is_region })
    }

    /// Rewrites the whole structure into `dst` in van Emde Boas page
    /// order. Both stores must be quiesced.
    pub(crate) fn repack(&self, src: &PageStore, dst: &PageStore) -> Result<InnerHandle> {
        ensure_quiesced(src)?;
        ensure_quiesced(dst)?;
        let mut graph = PageGraph::new();
        self.collect_pages(src, &mut graph)?;
        let reloc = Relocation::alloc_in(&graph.veb_order(), dst)?;
        self.rewrite_into(src, dst, &reloc)
    }
}

fn collect_region(store: &PageStore, root: PageId, graph: &mut PageGraph) -> Result<()> {
    let Some(root_idx) = graph.add_root(root) else {
        return Ok(());
    };
    let mut inners: Vec<InnerHandle> = Vec::new();
    let mut queue = VecDeque::from([(root, root_idx)]);
    while let Some((pid, idx)) = queue.pop_front() {
        let page = store.read(pid)?;
        let header = decode_header(&page)?;
        if !header.u_page.is_null() {
            graph.attach(idx, &[header.u_page]);
        }
        for slot in 0..header.count {
            let rec = crate::two_level::decode_record(&page, slot)?;
            for head in
                [rec.x_list.head(), rec.y_list.head(), rec.a_list.head(), rec.s_list.head()]
            {
                graph.attach(idx, &chain_pages(store, head)?);
            }
            if !rec.u_buf.is_null() {
                graph.attach(idx, &[rec.u_buf]);
            }
            inners.push(InnerHandle {
                root: rec.inner_root,
                n: rec.inner_n,
                is_region: rec.inner_is_region,
            });
            for child in [rec.left, rec.right] {
                if !child.page.is_null() && child.page != pid {
                    if let Some(child_idx) = graph.add_child(idx, child.page) {
                        queue.push_back((child.page, child_idx));
                    }
                }
            }
        }
    }
    // Inner structures after the whole region tree: each one contiguous.
    for inner in inners {
        inner.collect_pages(store, graph)?;
    }
    Ok(())
}

fn rewrite_region(
    src: &PageStore,
    dst: &PageStore,
    root: PageId,
    map: &Relocation,
) -> Result<()> {
    let mut visited = HashSet::new();
    let mut stack = vec![root];
    let mut buf = vec![0u8; src.page_size()];
    while let Some(pid) = stack.pop() {
        if !visited.insert(pid.0) {
            continue;
        }
        let page = src.read(pid)?;
        let header = decode_header(&page)?;
        if !header.u_page.is_null() {
            copy_raw(src, dst, header.u_page, map)?;
        }
        let used = {
            let mut w = PageWriter::new(&mut buf);
            encode_header(
                &mut w,
                &PageHeaderInfo {
                    count: header.count,
                    churn: header.churn,
                    subtree_n: header.subtree_n,
                    u_page: map.get(header.u_page)?,
                },
            )?;
            for slot in 0..header.count {
                let rec = crate::two_level::decode_record(&page, slot)?;
                let moved = RegionRecord {
                    left: NodeRef { page: map.get(rec.left.page)?, slot: rec.left.slot },
                    right: NodeRef { page: map.get(rec.right.page)?, slot: rec.right.slot },
                    x_list: relocate(&rec.x_list, map)?,
                    y_list: relocate(&rec.y_list, map)?,
                    right_y_list: relocate(&rec.right_y_list, map)?,
                    a_list: relocate(&rec.a_list, map)?,
                    s_list: relocate(&rec.s_list, map)?,
                    inner_root: map.get(rec.inner_root)?,
                    u_buf: map.get(rec.u_buf)?,
                    ..rec
                };
                encode_record(&mut w, &moved)?;
            }
            w.position()
        };
        for slot in 0..header.count {
            let rec = crate::two_level::decode_record(&page, slot)?;
            for head in
                [rec.x_list.head(), rec.y_list.head(), rec.a_list.head(), rec.s_list.head()]
            {
                copy_chain(src, dst, head, map)?;
            }
            if !rec.u_buf.is_null() {
                copy_raw(src, dst, rec.u_buf, map)?;
            }
            InnerHandle { root: rec.inner_root, n: rec.inner_n, is_region: rec.inner_is_region }
                .rewrite_into(src, dst, map)?;
            for child in [rec.left, rec.right] {
                if !child.page.is_null() && child.page != pid {
                    stack.push(child.page);
                }
            }
        }
        dst.write(map.get(pid)?, &buf[..used])?;
    }
    Ok(())
}

impl TwoLevelPst {
    /// Rewrites the structure into `dst` in van Emde Boas page order and
    /// returns the relocated handle. Both stores must be quiesced.
    pub fn repack(&self, src: &PageStore, dst: &PageStore) -> Result<Self> {
        Ok(TwoLevelPst { root: self.root.repack(src, dst)? })
    }
}

impl MultilevelPst {
    /// Rewrites the structure into `dst` in van Emde Boas page order and
    /// returns the relocated handle. Both stores must be quiesced.
    pub fn repack(&self, src: &PageStore, dst: &PageStore) -> Result<Self> {
        Ok(MultilevelPst { root: self.root.repack(src, dst)?, levels: self.levels })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::TwoSided;
    use pc_pagestore::Point;

    fn xorshift(state: &mut u64, bound: i64) -> i64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        (*state % bound as u64) as i64
    }

    fn random_points(n: usize, domain: i64, seed: u64) -> Vec<Point> {
        let mut s = seed;
        (0..n)
            .map(|id| Point::new(xorshift(&mut s, domain), xorshift(&mut s, domain), id as u64))
            .collect()
    }

    fn ids(mut pts: Vec<Point>) -> Vec<u64> {
        let mut out: Vec<u64> = pts.drain(..).map(|p| p.id).collect();
        out.sort_unstable();
        out
    }

    macro_rules! assert_repack_identical {
        ($orig:expr, $src:expr, $qseed:expr, $tag:expr) => {{
            let orig = $orig;
            let dst = PageStore::in_memory(512);
            let packed = orig.repack(&$src, &dst).unwrap();
            assert_eq!(dst.live_pages(), $src.live_pages(), "{}", $tag);
            let mut s: u64 = $qseed;
            for _ in 0..30 {
                let q = TwoSided {
                    x0: xorshift(&mut s, 11_000) - 500,
                    y0: xorshift(&mut s, 11_000) - 500,
                };
                let (ra, ca) = orig.query_counted(&$src, q).unwrap();
                let (rb, cb) = packed.query_counted(&dst, q).unwrap();
                assert_eq!(ids(ra), ids(rb), "{} q={q:?}", $tag);
                assert_eq!(ca.skeletal, cb.skeletal, "{} q={q:?}", $tag);
                assert_eq!(ca.cache_blocks, cb.cache_blocks, "{} q={q:?}", $tag);
                assert_eq!(ca.node_blocks, cb.node_blocks, "{} q={q:?}", $tag);
            }
        }};
    }

    #[test]
    fn repacked_single_level_variants_answer_and_count_identically() {
        let pts = random_points(2500, 10_000, 0xd00d);
        let src = PageStore::in_memory(512);
        assert_repack_identical!(NaivePst::build(&src, &pts).unwrap(), src, 0x11, "naive");
        let src = PageStore::in_memory(512);
        assert_repack_identical!(BasicPst::build(&src, &pts).unwrap(), src, 0x22, "basic");
        let src = PageStore::in_memory(512);
        assert_repack_identical!(SegmentedPst::build(&src, &pts).unwrap(), src, 0x33, "seg");
    }

    #[test]
    fn repacked_two_level_answers_and_counts_identically() {
        let pts = random_points(4000, 15_000, 0xfeed);
        let src = PageStore::in_memory(512);
        assert_repack_identical!(TwoLevelPst::build(&src, &pts).unwrap(), src, 0x44, "two");
    }

    #[test]
    fn repacked_multilevel_answers_and_counts_identically() {
        let pts = random_points(3000, 12_000, 0xbead);
        let src = PageStore::in_memory(512);
        assert_repack_identical!(MultilevelPst::build(&src, &pts, 3).unwrap(), src, 0x55, "ml");
    }

    #[test]
    fn repack_empty_structures() {
        let src = PageStore::in_memory(512);
        let pst = SegmentedPst::build(&src, &[]).unwrap();
        let dst = PageStore::in_memory(512);
        let packed = pst.repack(&src, &dst).unwrap();
        assert!(packed.query(&dst, TwoSided { x0: 0, y0: 0 }).unwrap().is_empty());

        let src = PageStore::in_memory(512);
        let pst = TwoLevelPst::build(&src, &[]).unwrap();
        let dst = PageStore::in_memory(512);
        let packed = pst.repack(&src, &dst).unwrap();
        assert!(packed.query(&dst, TwoSided { x0: 0, y0: 0 }).unwrap().is_empty());
    }
}
