//! External layout and construction of the single-level PST variants
//! (naive / Lemma 3.1 / Theorem 3.2).
//!
//! ## On-page layouts
//!
//! Every region (binary node) owns a **points page**, which also carries
//! the child links used by the descendant traversal so that visiting a
//! descendant costs exactly one I/O:
//!
//! ```text
//! points page: [count: u16][left_pts: u64][right_pts: u64]
//!              [left_cnt: u16][right_cnt: u16][point * count]
//! ```
//!
//! Navigation state lives in **skeletal pages** (Figure 2): binary subtrees
//! of height `h = ⌊log₂(capacity+1)⌋` packed one per page, with 130-byte
//! records:
//!
//! ```text
//! record: [split: Point][min_y: Point]
//!         [left_ref: u64+u16][right_ref: u64+u16]
//!         [own_pts: u64][own_cnt: u16]
//!         [left_pts: u64][left_cnt: u16][right_pts: u64][right_cnt: u16]
//!         [a_list: BlockList<Point>][s_list: BlockList<SEntry>]
//! ```
//!
//! `a_list`/`s_list` are the paper's A- and S-lists; which ancestors they
//! cover depends on the [`CacheMode`].

use pc_pagestore::codec::{PageReader, PageWriter};
use pc_pagestore::layout::BlockList;
use pc_pagestore::{PageId, PageStore, Point, Record, Result, NULL_PAGE};

use crate::mem::{cmp_x, cmp_y, MemPst, TwoSided, NONE};
use crate::query::{run_two_sided, QueryCounters};

/// Which path segments the per-node A/S caches cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    /// No caches at all: the [IKO] baseline (`O(log n + t/B)` queries).
    None,
    /// Caches cover the entire root path (Lemma 3.1,
    /// `O((n/B) log n)` space).
    FullPath,
    /// Caches cover only ancestors within the same skeletal page — the
    /// `log B`-segment scheme of Theorem 3.2 (`O((n/B) log B)` space).
    InPage,
}

/// An S-list entry: a sibling point tagged with the tree depth of the path
/// node whose right sibling contributed it, so queries can count
/// qualification per sibling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SEntry {
    /// The copied sibling point.
    pub p: Point,
    /// Depth of the path node (the sibling's parent).
    pub depth: u16,
}

impl Record for SEntry {
    const ENCODED_LEN: usize = Point::ENCODED_LEN + 2;

    fn encode(&self, w: &mut PageWriter<'_>) -> Result<()> {
        self.p.encode(w)?;
        w.put_u16(self.depth)
    }

    fn decode(r: &mut PageReader<'_>) -> Result<Self> {
        Ok(SEntry { p: Point::decode(r)?, depth: r.get_u16()? })
    }
}

/// Byte size of one skeletal record.
pub const RECORD_LEN: usize = 24 + 24 + 10 + 10 + 8 + 2 + 8 + 2 + 8 + 2 + 16 + 16;
/// Skeletal page header size.
pub const PAGE_HEADER: usize = 2;
/// Points-page header size.
pub const POINTS_HEADER: usize = 2 + 8 + 8 + 2 + 2;

/// Region capacity: points per node block.
pub fn points_capacity(page_size: usize) -> usize {
    let cap = (page_size - POINTS_HEADER) / Point::ENCODED_LEN;
    assert!(cap >= 2, "page size {page_size} too small for a PST points page");
    cap
}

/// Skeletal records per page.
pub fn skeletal_capacity(page_size: usize) -> usize {
    let cap = (page_size - PAGE_HEADER) / RECORD_LEN;
    assert!(cap >= 3, "page size {page_size} too small for a PST skeletal page");
    cap
}

/// Reference to a skeletal record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeRef {
    /// Skeletal page.
    pub page: PageId,
    /// Slot within the page.
    pub slot: u16,
}

/// A decoded skeletal record.
#[derive(Debug, Clone)]
pub struct SkeletalRecord {
    /// Routing key: max x-key of the left subtree.
    pub split: Point,
    /// Lowest point (y-order) stored at this node; garbage when
    /// `own_cnt == 0`.
    pub min_y: Point,
    /// Left child skeletal ref ([`NULL_PAGE`] for leaves).
    pub left: NodeRef,
    /// Right child skeletal ref.
    pub right: NodeRef,
    /// This node's points page.
    pub own_pts: PageId,
    /// Number of points at this node.
    pub own_cnt: u16,
    /// Left child's points page (kept for layout symmetry; the 2-sided
    /// engine only seeds right siblings, but the record format is shared
    /// with diagnostics and freeing walks).
    #[allow(dead_code)]
    pub left_pts: PageId,
    /// Left child's point count.
    #[allow(dead_code)]
    pub left_cnt: u16,
    /// Right child's points page.
    pub right_pts: PageId,
    /// Right child's point count.
    pub right_cnt: u16,
    /// A-list: covered ancestors' points, descending x-key.
    pub a_list: BlockList<Point>,
    /// S-list: covered right-siblings' points, descending y-key.
    pub s_list: BlockList<SEntry>,
}

/// Decodes the record at `slot` from raw skeletal-page bytes.
pub fn decode_record(page: &[u8], slot: u16) -> Result<SkeletalRecord> {
    let offset = PAGE_HEADER + RECORD_LEN * slot as usize;
    let mut r = PageReader::new(&page[offset..offset + RECORD_LEN]);
    Ok(SkeletalRecord {
        split: Point::decode(&mut r)?,
        min_y: Point::decode(&mut r)?,
        left: NodeRef { page: PageId(r.get_u64()?), slot: r.get_u16()? },
        right: NodeRef { page: PageId(r.get_u64()?), slot: r.get_u16()? },
        own_pts: PageId(r.get_u64()?),
        own_cnt: r.get_u16()?,
        left_pts: PageId(r.get_u64()?),
        left_cnt: r.get_u16()?,
        right_pts: PageId(r.get_u64()?),
        right_cnt: r.get_u16()?,
        a_list: BlockList::decode(&mut r)?,
        s_list: BlockList::decode(&mut r)?,
    })
}

/// A decoded points page.
#[derive(Debug, Clone)]
pub struct PointsPage {
    /// The node's points, descending y-key.
    pub points: Vec<Point>,
    /// Left child points page ([`NULL_PAGE`] for leaves).
    pub left_pts: PageId,
    /// Right child points page.
    pub right_pts: PageId,
    /// Left child point count.
    pub left_cnt: u16,
    /// Right child point count.
    pub right_cnt: u16,
}

/// Reads and decodes a points page (one I/O).
pub fn read_points_page(store: &PageStore, id: PageId) -> Result<PointsPage> {
    let page = store.read(id)?;
    let mut r = PageReader::new(&page);
    let count = r.get_u16()? as usize;
    let left_pts = PageId(r.get_u64()?);
    let right_pts = PageId(r.get_u64()?);
    let left_cnt = r.get_u16()?;
    let right_cnt = r.get_u16()?;
    let mut points = Vec::with_capacity(count);
    for _ in 0..count {
        points.push(Point::decode(&mut r)?);
    }
    Ok(PointsPage { points, left_pts, right_pts, left_cnt, right_cnt })
}

/// The built single-level structure shared by all three variants.
pub struct PstCore {
    /// Skeletal page holding the binary root at slot 0.
    pub root_page: PageId,
    /// Number of indexed points.
    pub n: u64,
    /// Cache mode the structure was built with.
    pub mode: CacheMode,
}

/// Builds the external structure from an in-memory decomposition whose
/// region capacity equals [`points_capacity`].
pub fn build_external(store: &PageStore, mem: &MemPst, mode: CacheMode) -> Result<PstCore> {
    let page_size = store.page_size();
    assert_eq!(mem.cap, points_capacity(page_size), "decomposition cap must match page size");

    // Points pages (allocated up front for child links).
    let pts_ids = write_points_pages(store, mem)?;
    let mut buf = vec![0u8; page_size];

    // Skeletal pagination.
    let (pages, node_loc) = paginate(mem, skeletal_capacity(page_size));
    let page_ids: Vec<PageId> =
        pages.iter().map(|_| store.alloc()).collect::<Result<_>>()?;

    // A/S lists via DFS with an ancestor chain.
    let mut a_lists: Vec<BlockList<Point>> = vec![BlockList::empty(); mem.nodes.len()];
    let mut s_lists: Vec<BlockList<SEntry>> = vec![BlockList::empty(); mem.nodes.len()];
    if mode != CacheMode::None {
        // chain entries: (arena idx, depth, went_left)
        struct Frame {
            node: usize,
            depth: u16,
            chain: Vec<(usize, u16, bool)>,
        }
        let mut stack = vec![Frame { node: 0, depth: 0, chain: Vec::new() }];
        while let Some(Frame { node, depth, chain }) = stack.pop() {
            let mut a: Vec<Point> = Vec::new();
            let mut s: Vec<SEntry> = Vec::new();
            for &(anc, anc_depth, went_left) in &chain {
                a.extend(mem.nodes[anc].points.iter().copied());
                if went_left {
                    let sib = mem.nodes[anc].right;
                    s.extend(
                        mem.nodes[sib]
                            .points
                            .iter()
                            .map(|&p| SEntry { p, depth: anc_depth }),
                    );
                }
            }
            a.sort_unstable_by(|x, y| cmp_x(y, x));
            s.sort_unstable_by(|x, y| cmp_y(&y.p, &x.p));
            a_lists[node] = BlockList::build(store, &a)?;
            s_lists[node] = BlockList::build(store, &s)?;

            let mn = &mem.nodes[node];
            if mn.left != NONE {
                for (child, went_left) in [(mn.left, true), (mn.right, false)] {
                    let chain = if mode == CacheMode::FullPath
                        || node_loc[child].0 == node_loc[node].0
                    {
                        let mut c = chain.clone();
                        c.push((node, depth, went_left));
                        c
                    } else {
                        // New skeletal page: segment restarts.
                        Vec::new()
                    };
                    stack.push(Frame { node: child, depth: depth + 1, chain });
                }
            }
        }
    }

    // Serialize skeletal pages.
    for (page_idx, members) in pages.iter().enumerate() {
        let used = {
            let mut w = PageWriter::new(&mut buf);
            w.put_u16(members.len() as u16)?;
            for &ni in members {
                let node = &mem.nodes[ni];
                node.split.encode(&mut w)?;
                node.points.last().copied().unwrap_or(Point::new(0, 0, 0)).encode(&mut w)?;
                if node.is_leaf() {
                    for _ in 0..2 {
                        w.put_u64(NULL_PAGE.0)?;
                        w.put_u16(0)?;
                    }
                } else {
                    for child in [node.left, node.right] {
                        let (p, s) = node_loc[child];
                        w.put_u64(page_ids[p].0)?;
                        w.put_u16(s)?;
                    }
                }
                w.put_u64(pts_ids[ni].0)?;
                w.put_u16(node.points.len() as u16)?;
                if node.is_leaf() {
                    w.put_u64(NULL_PAGE.0)?;
                    w.put_u16(0)?;
                    w.put_u64(NULL_PAGE.0)?;
                    w.put_u16(0)?;
                } else {
                    w.put_u64(pts_ids[node.left].0)?;
                    w.put_u16(mem.nodes[node.left].points.len() as u16)?;
                    w.put_u64(pts_ids[node.right].0)?;
                    w.put_u16(mem.nodes[node.right].points.len() as u16)?;
                }
                a_lists[ni].encode(&mut w)?;
                s_lists[ni].encode(&mut w)?;
            }
            w.position()
        };
        store.write(page_ids[page_idx], &buf[..used])?;
    }

    Ok(PstCore { root_page: page_ids[0], n: mem.nodes[0].subtree_size, mode })
}


/// Groups the binary tree into skeletal pages (Figure 2): starting from
/// each page root, nodes are added in BFS order until the page's record
/// capacity is reached; overflowing children seed new pages. Filling by
/// capacity rather than by a fixed height keeps the page count at
/// `O(#nodes / capacity)` even when the tree height is not a multiple of
/// the per-page height — a fixed-height chunking leaves the ragged bottom
/// level as near-empty pages. Returns the per-page member lists (arena
/// indices, slot order) and each node's `(page, slot)`; a page's subtree
/// root is always slot 0.
pub(crate) fn paginate(mem: &MemPst, cap: usize) -> (Vec<Vec<usize>>, Vec<(usize, u16)>) {
    let mut node_loc: Vec<(usize, u16)> = vec![(usize::MAX, 0); mem.nodes.len()];
    let mut pages: Vec<Vec<usize>> = Vec::new();
    let mut page_roots = std::collections::VecDeque::new();
    page_roots.push_back(0usize);
    while let Some(root) = page_roots.pop_front() {
        let page_idx = pages.len();
        let mut members = Vec::new();
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(root);
        while let Some(ni) = queue.pop_front() {
            if members.len() == cap {
                page_roots.push_back(ni);
                continue;
            }
            node_loc[ni] = (page_idx, members.len() as u16);
            members.push(ni);
            let node = &mem.nodes[ni];
            if !node.is_leaf() {
                queue.push_back(node.left);
                queue.push_back(node.right);
            }
        }
        pages.push(members);
    }
    (pages, node_loc)
}

/// Writes one points page per region (child links included) and returns
/// the page ids, indexed by arena position.
pub(crate) fn write_points_pages(store: &PageStore, mem: &MemPst) -> Result<Vec<PageId>> {
    let page_size = store.page_size();
    let pts_ids: Vec<PageId> =
        mem.nodes.iter().map(|_| store.alloc()).collect::<Result<_>>()?;
    let mut buf = vec![0u8; page_size];
    for (i, node) in mem.nodes.iter().enumerate() {
        let (lp, lc, rp, rc) = if node.is_leaf() {
            (NULL_PAGE, 0u16, NULL_PAGE, 0u16)
        } else {
            (
                pts_ids[node.left],
                mem.nodes[node.left].points.len() as u16,
                pts_ids[node.right],
                mem.nodes[node.right].points.len() as u16,
            )
        };
        let used = {
            let mut w = PageWriter::new(&mut buf);
            w.put_u16(node.points.len() as u16)?;
            w.put_u64(lp.0)?;
            w.put_u64(rp.0)?;
            w.put_u16(lc)?;
            w.put_u16(rc)?;
            for p in &node.points {
                p.encode(&mut w)?;
            }
            w.position()
        };
        store.write(pts_ids[i], &buf[..used])?;
    }
    Ok(pts_ids)
}

macro_rules! pst_variant {
    ($(#[$doc:meta])* $name:ident, $mode:expr) => {
        $(#[$doc])*
        pub struct $name {
            pub(crate) core: PstCore,
        }

        impl $name {
            /// Builds the structure over `points`.
            pub fn build(store: &PageStore, points: &[Point]) -> Result<Self> {
                let mem = MemPst::build(points, points_capacity(store.page_size()));
                Ok($name { core: build_external(store, &mem, $mode)? })
            }

            /// Number of indexed points.
            pub fn len(&self) -> u64 {
                self.core.n
            }

            /// True when no points are indexed.
            pub fn is_empty(&self) -> bool {
                self.core.n == 0
            }

            /// Answers a 2-sided query.
            pub fn query(&self, store: &PageStore, q: TwoSided) -> Result<Vec<Point>> {
                Ok(self.query_counted(store, q)?.0)
            }

            /// Answers a 2-sided query, also returning I/O counters for the
            /// experiment harness.
            pub fn query_counted(
                &self,
                store: &PageStore,
                q: TwoSided,
            ) -> Result<(Vec<Point>, QueryCounters)> {
                run_two_sided(store, &self.core, q)
            }
        }
    };
}

pst_variant!(
    /// The [IKO]-style baseline: linear space but no caches, so every
    /// ancestor and sibling block on the corner path is read individually —
    /// `O(log n + t/B)` query I/Os. This is the structure path caching
    /// improves on (experiment E12).
    NaivePst,
    CacheMode::None
);

pst_variant!(
    /// Lemma 3.1: A/S caches over the **full** root path at every region.
    /// Optimal `O(log_B n + t/B)` queries; `O((n/B) log n)` space.
    BasicPst,
    CacheMode::FullPath
);

pst_variant!(
    /// Theorem 3.2: A/S caches cover only the `log B`-sized path segment
    /// (one skeletal page); queries read one A/S pair per segment.
    /// Optimal `O(log_B n + t/B)` queries; `O((n/B) log B)` space.
    SegmentedPst,
    CacheMode::InPage
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        assert_eq!(RECORD_LEN, 130);
        assert_eq!(points_capacity(512), 20);
        assert_eq!(points_capacity(4096), 169);
        assert_eq!(skeletal_capacity(512), 3);
        assert_eq!(skeletal_capacity(4096), 31);
    }

    #[test]
    fn sentry_roundtrip() {
        let mut buf = vec![0u8; SEntry::ENCODED_LEN];
        let e = SEntry { p: Point::new(3, -4, 9), depth: 7 };
        let mut w = PageWriter::new(&mut buf);
        e.encode(&mut w).unwrap();
        let mut r = PageReader::new(&buf);
        assert_eq!(SEntry::decode(&mut r).unwrap(), e);
    }

    #[test]
    fn space_ordering_none_vs_full_vs_segmented() {
        // Same data, three builds: naive < segmented < full-path space.
        let mut s = 0x1357u64;
        let mut rand = move |b: i64| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % b as u64) as i64
        };
        let pts: Vec<Point> =
            (0..20_000).map(|id| Point::new(rand(100_000), rand(100_000), id)).collect();

        let mut sizes = Vec::new();
        for mode in [CacheMode::None, CacheMode::InPage, CacheMode::FullPath] {
            let store = PageStore::in_memory(512);
            let mem = MemPst::build(&pts, points_capacity(512));
            build_external(&store, &mem, mode).unwrap();
            sizes.push(store.live_pages());
        }
        assert!(sizes[0] < sizes[1], "naive {} !< segmented {}", sizes[0], sizes[1]);
        assert!(sizes[1] < sizes[2], "segmented {} !< full {}", sizes[1], sizes[2]);
        // Naive is O(n/B): within a small constant of 2n/B.
        let b = points_capacity(512) as u64;
        assert!(sizes[0] <= 4 * 20_000 / b, "naive size {} not linear", sizes[0]);
    }
}
