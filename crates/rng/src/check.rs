//! Minimal property-testing harness: seeded case generation, greedy
//! failure shrinking, and persisted regression seeds.
//!
//! This replaces `proptest` in the hermetic workspace. The moving parts:
//!
//! * **Generation** — each case `i` runs the test's generator closure on an
//!   [`Rng`] seeded with `mix64(base_seed ^ i)`, so any single case can be
//!   re-run in isolation from its printed seed.
//! * **Shrinking** — on failure the harness greedily walks candidates from
//!   the test's shrink closure, keeping any candidate that still fails,
//!   until no candidate fails or the step budget runs out. Helpers for the
//!   common shapes ([`shrink_vec`], [`shrink_i64`]) live here; a test that
//!   doesn't want shrinking passes [`no_shrink`].
//! * **Regression seeds** — [`Config::regressions`] holds case seeds that
//!   previously failed; they run before any fresh cases, the same role as
//!   proptest's `.proptest-regressions` files, but checked in as plain
//!   code next to the test.
//!
//! A failing property panics with the minimal input's `Debug` form, the
//! case seed to pin in `regressions`, and the property's error message.

use std::fmt::Debug;

use crate::{mix64, Rng};

/// Harness configuration for one property.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of fresh random cases to run.
    pub cases: u64,
    /// Base seed; case `i` uses `mix64(seed ^ i)`.
    pub seed: u64,
    /// Upper bound on property evaluations spent shrinking one failure.
    pub max_shrink_steps: u32,
    /// Case seeds of past failures, re-run before any fresh cases.
    pub regressions: &'static [u64],
}

impl Config {
    /// `cases` random cases with the workspace-default seed.
    pub fn with_cases(cases: u64) -> Self {
        Config { cases, seed: 0x7061_7468_6361_6368, max_shrink_steps: 2000, regressions: &[] }
    }

    /// Adds persisted regression seeds (printed by past failures).
    pub fn with_regressions(mut self, regressions: &'static [u64]) -> Self {
        self.regressions = regressions;
        self
    }
}

/// Runs `prop` against `cfg.cases` generated inputs (regression seeds
/// first), shrinking and panicking on the first failure.
///
/// `generate` draws an input from a seeded [`Rng`]; `shrink` proposes
/// strictly-smaller variants of a failing input; `prop` returns `Err` with
/// a description when the property is violated.
pub fn check<T, G, S, P>(cfg: &Config, mut generate: G, mut shrink: S, mut prop: P)
where
    T: Clone + Debug,
    G: FnMut(&mut Rng) -> T,
    S: FnMut(&T) -> Vec<T>,
    P: FnMut(&T) -> Result<(), String>,
{
    let fresh = (0..cfg.cases).map(|i| mix64(cfg.seed ^ i));
    for (case_no, case_seed) in cfg.regressions.iter().copied().chain(fresh).enumerate() {
        let mut rng = Rng::seed_from_u64(case_seed);
        let input = generate(&mut rng);
        if let Err(msg) = prop(&input) {
            let (min_input, min_msg, steps) =
                shrink_failure(input, msg, &mut shrink, &mut prop, cfg.max_shrink_steps);
            panic!(
                "property failed (case {case_no}, seed {case_seed:#018x}; \
                 pin it via Config::with_regressions)\n\
                 error: {min_msg}\n\
                 minimal input after {steps} shrink steps: {min_input:?}"
            );
        }
    }
}

fn shrink_failure<T, S, P>(
    mut cur: T,
    mut cur_msg: String,
    shrink: &mut S,
    prop: &mut P,
    max_steps: u32,
) -> (T, String, u32)
where
    T: Clone + Debug,
    S: FnMut(&T) -> Vec<T>,
    P: FnMut(&T) -> Result<(), String>,
{
    let mut steps = 0u32;
    'progress: loop {
        for candidate in shrink(&cur) {
            if steps >= max_steps {
                break 'progress;
            }
            steps += 1;
            if let Err(msg) = prop(&candidate) {
                cur = candidate;
                cur_msg = msg;
                continue 'progress;
            }
        }
        break;
    }
    (cur, cur_msg, steps)
}

/// Shrink closure for tests that opt out of shrinking.
pub fn no_shrink<T>(_: &T) -> Vec<T> {
    Vec::new()
}

/// Candidates for a failing `Vec`: drop the front half, drop the back
/// half, drop single elements, then shrink elements in place via `elem`.
/// Produces each candidate lazily in that order (smaller-first keeps the
/// greedy walk effective).
pub fn shrink_vec<T: Clone>(v: &[T], mut elem: impl FnMut(&T) -> Vec<T>) -> Vec<Vec<T>> {
    let mut out = Vec::new();
    if v.is_empty() {
        return out;
    }
    if v.len() > 1 {
        out.push(v[v.len() / 2..].to_vec());
        out.push(v[..v.len() / 2].to_vec());
    }
    // Cap the per-round candidate count so shrinking long vectors stays
    // within the step budget: probe single-element removals evenly.
    let stride = (v.len() / 32).max(1);
    for i in (0..v.len()).step_by(stride) {
        let mut smaller = v.to_vec();
        smaller.remove(i);
        out.push(smaller);
    }
    for i in (0..v.len()).step_by(stride) {
        for e in elem(&v[i]) {
            let mut tweaked = v.to_vec();
            tweaked[i] = e;
            out.push(tweaked);
        }
    }
    out
}

/// Candidates for a failing `i64`, moving toward zero.
pub fn shrink_i64(x: i64) -> Vec<i64> {
    let mut out = Vec::new();
    for cand in [0, x / 2, x - x.signum()] {
        if cand != x && !out.contains(&cand) {
            out.push(cand);
        }
    }
    out
}

/// Candidates for a failing `usize`, moving toward zero.
pub fn shrink_usize(x: usize) -> Vec<usize> {
    let mut out = Vec::new();
    for cand in [0, x / 2, x.saturating_sub(1)] {
        if cand != x && !out.contains(&cand) {
            out.push(cand);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut runs = 0u64;
        check(
            &Config::with_cases(25),
            |rng| rng.gen_range(0i64..100),
            no_shrink,
            |_| {
                runs += 1;
                Ok(())
            },
        );
        assert_eq!(runs, 25);
    }

    #[test]
    fn failing_property_shrinks_to_minimal_vec() {
        // Property: "no vector contains an element >= 10". The minimal
        // counterexample is a single element equal to 10.
        let result = std::panic::catch_unwind(|| {
            check(
                &Config::with_cases(200),
                |rng| {
                    let n = rng.gen_range(1usize..=20);
                    (0..n).map(|_| rng.gen_range(0i64..100)).collect::<Vec<i64>>()
                },
                |v| shrink_vec(v, |&x| shrink_i64(x)),
                |v| {
                    if v.iter().any(|&x| x >= 10) {
                        Err("contains large element".into())
                    } else {
                        Ok(())
                    }
                },
            )
        });
        let msg = *result.expect_err("property must fail").downcast::<String>().unwrap();
        assert!(msg.contains("minimal input"), "{msg}");
        assert!(msg.contains("[10]"), "should shrink to exactly [10]: {msg}");
    }

    #[test]
    fn regression_seeds_run_first_and_are_reported() {
        let mut inputs_seen: Vec<i64> = Vec::new();
        // With a pinned regression seed, case 0 must be that seed's input.
        const SEEDS: &[u64] = &[0xdead_beef];
        let expected = {
            let mut rng = Rng::seed_from_u64(SEEDS[0]);
            rng.gen_range(0i64..1000)
        };
        check(
            &Config::with_cases(3).with_regressions(SEEDS),
            |rng| rng.gen_range(0i64..1000),
            no_shrink,
            |&x| {
                inputs_seen.push(x);
                Ok(())
            },
        );
        assert_eq!(inputs_seen.len(), 4, "1 regression + 3 fresh cases");
        assert_eq!(inputs_seen[0], expected);
    }

    #[test]
    fn shrink_helpers_move_toward_zero() {
        assert!(shrink_i64(10).contains(&5));
        assert!(shrink_i64(10).contains(&0));
        assert!(shrink_i64(-4).contains(&-2));
        assert!(shrink_i64(0).is_empty());
        assert!(shrink_usize(7).contains(&3));
        assert!(shrink_usize(0).is_empty());
    }
}
