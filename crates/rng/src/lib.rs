//! # pc-rng — deterministic random numbers without crates.io
//!
//! The workspace is hermetic (tier-1 verify runs with the network
//! disabled), so this crate replaces `rand` everywhere: workload
//! generation, randomized tests, and the property-testing harness in
//! [`check`].
//!
//! The generator is **xoshiro256\*\*** (Blackman & Vigna), seeded from a
//! single `u64` through **SplitMix64** — the same seeding scheme the
//! reference implementation recommends, and the scheme `rand`'s
//! `SeedableRng::seed_from_u64` uses. Both algorithms are tiny, public
//! domain, and fully specified, which is the point: every EXPERIMENTS.md
//! run is reproducible bit-for-bit on any machine from the printed seed,
//! with no third-party code on the measurement path.
//!
//! Determinism contract: for a fixed crate version, `Rng::seed_from_u64(s)`
//! yields the same stream on every platform. The stream is pinned by unit
//! tests against the reference test vectors, so an accidental algorithm
//! change fails CI rather than silently invalidating recorded experiments.

pub mod check;

/// SplitMix64: a tiny 64-bit generator used to expand one seed word into
/// xoshiro state (and usable standalone for cheap hashing/mixing).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// One-shot SplitMix64 mix of a single word; handy for deriving per-case
/// seeds from a base seed plus an index.
pub fn mix64(x: u64) -> u64 {
    SplitMix64::new(x).next_u64()
}

/// Seeded xoshiro256** generator: the workspace-standard PRNG.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator whose 256-bit state is expanded from `seed`
    /// with SplitMix64 (never all-zero, per the xoshiro authors).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Rng { s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()] }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns the next 32-bit output (upper half of a 64-bit draw).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)` by unbiased rejection sampling.
    /// `bound` must be nonzero.
    fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Reject the low `2^64 mod bound` values so the remainder is exact.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let v = self.next_u64();
            if v >= threshold {
                return v % bound;
            }
        }
    }

    /// Uniform value in `range`, matching `rand`'s `gen_range` call shape:
    /// both `lo..hi` and `lo..=hi` work, over `i64`, `u64`, and `usize`.
    ///
    /// Panics if the range is empty.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fills `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }

    /// Fisher–Yates shuffle of `slice`.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A reference to a uniformly random element, or `None` if empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.bounded(slice.len() as u64) as usize])
        }
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange {
    /// Element type produced by sampling.
    type Output;
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

impl SampleRange for std::ops::Range<i64> {
    type Output = i64;
    fn sample(self, rng: &mut Rng) -> i64 {
        assert!(self.start < self.end, "empty range {}..{}", self.start, self.end);
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(rng.bounded(span) as i64)
    }
}

impl SampleRange for std::ops::RangeInclusive<i64> {
    type Output = i64;
    fn sample(self, rng: &mut Rng) -> i64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = hi.wrapping_sub(lo) as u64;
        if span == u64::MAX {
            // Full i64 domain: every 64-bit draw is a valid sample.
            return rng.next_u64() as i64;
        }
        lo.wrapping_add(rng.bounded(span + 1) as i64)
    }
}

impl SampleRange for std::ops::Range<u64> {
    type Output = u64;
    fn sample(self, rng: &mut Rng) -> u64 {
        assert!(self.start < self.end, "empty range {}..{}", self.start, self.end);
        self.start + rng.bounded(self.end - self.start)
    }
}

impl SampleRange for std::ops::RangeInclusive<u64> {
    type Output = u64;
    fn sample(self, rng: &mut Rng) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = hi - lo;
        if span == u64::MAX {
            return rng.next_u64();
        }
        lo + rng.bounded(span + 1)
    }
}

impl SampleRange for std::ops::Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut Rng) -> usize {
        (self.start as u64..self.end as u64).sample(rng) as usize
    }
}

impl SampleRange for std::ops::RangeInclusive<usize> {
    type Output = usize;
    fn sample(self, rng: &mut Rng) -> usize {
        (*self.start() as u64..=*self.end() as u64).sample(rng) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vectors from the xoshiro256** public-domain C source:
    /// state seeded as {1, 2, 3, 4} must produce this exact stream.
    #[test]
    fn xoshiro_reference_vectors() {
        let mut rng = Rng { s: [1, 2, 3, 4] };
        let expected: [u64; 8] = [
            11520,
            0,
            1509978240,
            1215971899390074240,
            1216172134540287360,
            607988272756665600,
            16172922978634559625,
            8476171486693032832,
        ];
        for want in expected {
            assert_eq!(rng.next_u64(), want);
        }
    }

    /// Reference vectors for SplitMix64 seeded with 1234567.
    #[test]
    fn splitmix_reference_vectors() {
        let mut sm = SplitMix64::new(1234567);
        let expected: [u64; 5] = [
            6457827717110365317,
            3203168211198807973,
            9817491932198370423,
            4593380528125082431,
            16408922859458223821,
        ];
        for want in expected {
            assert_eq!(sm.next_u64(), want);
        }
    }

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Rng::seed_from_u64(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::seed_from_u64(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Rng::seed_from_u64(43);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_stays_in_bounds_all_shapes() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..2000 {
            let v = rng.gen_range(-5i64..70);
            assert!((-5..70).contains(&v));
            let v = rng.gen_range(-1_000_000i64..=1_000_000);
            assert!((-1_000_000..=1_000_000).contains(&v));
            let v = rng.gen_range(0usize..3);
            assert!(v < 3);
            let v = rng.gen_range(0usize..=0);
            assert_eq!(v, 0);
            let v = rng.gen_range(5u64..=6);
            assert!((5..=6).contains(&v));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = Rng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 5 values should appear in 200 draws");
    }

    #[test]
    fn full_domain_inclusive_ranges_do_not_overflow() {
        let mut rng = Rng::seed_from_u64(13);
        let _ = rng.gen_range(i64::MIN..=i64::MAX);
        let _ = rng.gen_range(0u64..=u64::MAX);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(17);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle of 100 elements should not be identity");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = Rng::seed_from_u64(19);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(23);
        for _ in 0..1000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
