//! Workspace-level umbrella for integration tests and examples.
//!
//! The real public API lives in the [`path_caching`] crate; this crate only
//! re-exports it so `tests/` and `examples/` at the repository root have a
//! single import path.

pub use path_caching as api;
