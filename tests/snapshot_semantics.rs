//! Snapshot-isolation semantics of the versioned serve path.
//!
//! The MVCC contract this suite pins, end to end:
//!
//! 1. **Pinned snapshots are immutable and lock-free**: a reader that pins
//!    a [`Snapshot`] keeps getting bit-identical answers while concurrent
//!    update batches install new epochs — and its query path takes *zero*
//!    exclusive lock acquisitions, measured with the `pc-sync` probe (the
//!    lock-freedom analogue of the zero-alloc counting test).
//! 2. **`as_of(v)` equals single-threaded replay**: querying any retained
//!    epoch over the wire matches an in-memory reference that replayed the
//!    same acked ops up to `v`, bit for bit.
//! 3. **GC never reclaims a pinned epoch**: retention can evict an epoch
//!    from the `as_of` window while a pin holds it alive, and the pinned
//!    reader stays bit-identical even as CoW-retired pages of *unpinned*
//!    epochs are reclaimed underneath it.
//! 4. **Seeded interleavings**: a pc-rng-driven mix of installs, pins,
//!    drops, pinned reads and `as_of` reads upholds all of the above;
//!    `PC_SNAPSHOT_SEED` reseeds the run.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pc_pagestore::{PageStore, Point, Snapshot, StoreError};
use pc_pst::{DynamicPst, TwoSided};
use pc_rng::Rng;
use pc_serve::wire::{Body, ErrorCode, Op};
use pc_serve::{
    canonicalize, decode_commit_meta, Client, DynamicPstTarget, Registry, Server, ServerConfig,
    ServerHandle, Service,
};
use pc_workloads::{gen_points, PointDist, DOMAIN};

const PAGE: usize = 512;

fn seed() -> u64 {
    std::env::var("PC_SNAPSHOT_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0x5EED_5A07)
}

/// Spawns a versioned single-target server over an in-memory store,
/// returning the handle and the shared store (for frozen-view reads).
fn spawn(points: &[Point], retain: usize) -> (ServerHandle, Arc<PageStore>) {
    let store = Arc::new(PageStore::in_memory(PAGE));
    let target = DynamicPstTarget::new(DynamicPst::build(&store, points).unwrap());
    let mut registry = Registry::new();
    registry.register("dyn", Box::new(target));
    let cfg = ServerConfig { workers: 2, version_retain: retain, ..ServerConfig::default() };
    let handle = Server::spawn(Service { store: Arc::clone(&store), registry }, cfg).unwrap();
    (handle, store)
}

/// Opens the frozen view of target 0 as of `snap` — the library-level
/// equivalent of what a worker does for an `as_of` request.
fn open_frozen(snap: &Snapshot, store: &PageStore) -> DynamicPst {
    let desc = decode_commit_meta(snap.user_meta())
        .and_then(|(_, descs)| descs.into_iter().next().flatten())
        .expect("versioned epoch carries the target descriptor");
    let _g = snap.enter();
    DynamicPst::open(store, &desc).unwrap()
}

/// Full scan of a frozen view under its snapshot, canonically sorted.
fn frozen_scan(snap: &Snapshot, frozen: &DynamicPst, store: &PageStore) -> Vec<Point> {
    let _g = snap.enter();
    let mut v = frozen.query(store, TwoSided { x0: i64::MIN, y0: i64::MIN }).unwrap();
    v.sort_unstable_by_key(|p| (p.x, p.y, p.id));
    v
}

fn acked(resp: Result<pc_serve::wire::Response, pc_serve::ClientError>) -> Body {
    match resp {
        Ok(r) => match r.body {
            b @ Body::Ack { .. } => b,
            other => panic!("update not acked: {other:?}"),
        },
        Err(e) => panic!("update failed: {e}"),
    }
}

fn initial_points(n: usize, seed: u64) -> Vec<Point> {
    gen_points(n, PointDist::Uniform, seed).iter().map(|&(x, y, id)| Point { x, y, id }).collect()
}

/// Acceptance pin: a reader holds one snapshot across many concurrent
/// batch installs; every probed read round is bit-identical to the answers
/// recorded before the first install, and takes zero exclusive locks.
#[test]
fn pinned_snapshot_is_lock_free_and_bit_identical_across_installs() {
    let seed = seed();
    let initial = initial_points(300, seed);
    let (handle, store) = spawn(&initial, 8);
    let versions = Arc::clone(handle.versions());

    let snap = versions.snapshot();
    let pinned_seq = snap.seq();
    let frozen = open_frozen(&snap, &store);

    // Seeded query set; the warm-up round both records the expected
    // answers and faults every page/path the queries will ever touch, so
    // the probed rounds measure the steady-state read path.
    let mut rng = Rng::seed_from_u64(seed ^ 0xF00D);
    let queries: Vec<TwoSided> = (0..12)
        .map(|_| TwoSided { x0: rng.gen_range(0..=DOMAIN), y0: rng.gen_range(0..=DOMAIN / 2) })
        .chain([TwoSided { x0: i64::MIN, y0: i64::MIN }])
        .collect();
    let expected: Vec<Vec<Point>> = queries
        .iter()
        .map(|&q| {
            let _g = snap.enter();
            frozen.query(&store, q).unwrap()
        })
        .collect();

    // Writer: 32 acked single-op batches — each ack proves an epoch
    // installed (install happens before the ack leaves the batcher).
    let done = Arc::new(AtomicBool::new(false));
    let writer = {
        let done = Arc::clone(&done);
        let addr = handle.addr();
        std::thread::spawn(move || {
            let mut client = Client::connect(addr, Duration::from_secs(5)).unwrap();
            let mut rng = Rng::seed_from_u64(seed ^ 0xBEEF);
            for i in 0..32u64 {
                let p = Point {
                    x: rng.gen_range(0..=DOMAIN),
                    y: rng.gen_range(0..=DOMAIN),
                    id: 30_000_000 + i,
                };
                acked(client.call(0, 0, Op::Insert(p)));
            }
            done.store(true, Ordering::Release);
        })
    };

    // Reader: probed rounds run *while* the writer installs. Each round
    // asserts bit-identical answers and a zero exclusive-lock delta on
    // this thread.
    let mut rounds = 0u64;
    loop {
        let finished = done.load(Ordering::Acquire);
        let locks_before = pc_sync::exclusive_acquisitions();
        for (q, want) in queries.iter().zip(&expected) {
            let got = {
                let _g = snap.enter();
                frozen.query(&store, *q).unwrap()
            };
            assert_eq!(&got, want, "pinned snapshot diverged at {q:?} (round {rounds})");
        }
        assert_eq!(
            pc_sync::exclusive_acquisitions(),
            locks_before,
            "pinned-snapshot query path acquired an exclusive lock (round {rounds})"
        );
        rounds += 1;
        if finished {
            break;
        }
    }
    writer.join().unwrap();

    // The pin really did span concurrent installs.
    assert!(
        versions.current_seq() >= pinned_seq + 2,
        "expected >= 2 epoch installs while pinned, got {} -> {}",
        pinned_seq,
        versions.current_seq()
    );
    // And the live head moved on while the snapshot did not.
    let mut client = Client::connect(handle.addr(), Duration::from_secs(5)).unwrap();
    let live = client.call(0, 0, Op::TwoSided { x0: i64::MIN, y0: i64::MIN }).unwrap();
    let Body::Points(live) = canonicalize(live.body) else { panic!("full scan body") };
    assert_eq!(live.len(), initial.len() + 32, "live head must see every acked insert");
    assert_eq!(
        frozen_scan(&snap, &frozen, &store).len(),
        initial.len(),
        "pinned snapshot must not see post-pin inserts"
    );
    eprintln!("pinned at seq {pinned_seq}, {rounds} probed rounds, head at {}", versions.current_seq());

    handle.shutdown();
    handle.join();
}

/// `as_of(v)` over the wire equals a single-threaded replay of the same
/// acked ops up to `v` — for every retained `v`; below the window it is a
/// clean typed error.
#[test]
fn as_of_matches_single_threaded_replay() {
    let seed = seed();
    let initial = initial_points(250, seed ^ 1);
    let (handle, _store) = spawn(&initial, 12);
    let mut client = Client::connect(handle.addr(), Duration::from_secs(5)).unwrap();

    // Reference: an independent replica replaying the identical op stream.
    let ref_store = PageStore::in_memory(PAGE);
    let mut reference = DynamicPst::build(&ref_store, &initial).unwrap();
    let full = TwoSided { x0: i64::MIN, y0: i64::MIN };
    let scan = |r: &DynamicPst| {
        let mut v = r.query(&ref_store, full).unwrap();
        v.sort_unstable_by_key(|p| (p.x, p.y, p.id));
        v
    };

    let mut rng = Rng::seed_from_u64(seed ^ 0xA50F);
    let mut live = initial.clone();
    let mut states: Vec<(u64, Vec<Point>)> = Vec::new();
    for i in 0..24u64 {
        let op = if !live.is_empty() && rng.gen_bool(0.3) {
            Op::Delete(live.swap_remove(rng.gen_range(0..live.len())))
        } else {
            let p = Point {
                x: rng.gen_range(0..=DOMAIN),
                y: rng.gen_range(0..=DOMAIN),
                id: 40_000_000 + i,
            };
            live.push(p);
            Op::Insert(p)
        };
        acked(client.call(0, 0, op.clone()));
        match &op {
            Op::Insert(p) => reference.insert(&ref_store, *p).unwrap(),
            Op::Delete(p) => reference.delete(&ref_store, *p).unwrap(),
            _ => unreachable!(),
        }
        let Body::Versions { current, .. } = client.versions().unwrap().body else {
            panic!("Versions body")
        };
        states.push((current, scan(&reference)));
    }

    let Body::Versions { current, oldest, installed, .. } = client.versions().unwrap().body else {
        panic!("Versions body")
    };
    assert_eq!(current, 24, "one epoch per acked single-op batch");
    assert!(installed >= 24);

    let mut checked = 0;
    for (v, want) in &states {
        if *v < oldest {
            continue;
        }
        let resp = client.call_as_of(0, 0, *v, full_scan_op()).unwrap();
        let Body::Points(got) = canonicalize(resp.body) else { panic!("as_of body") };
        assert_eq!(&got, want, "as_of({v}) diverged from single-threaded replay");
        checked += 1;
    }
    assert!(checked >= 12, "retention must keep a real as_of window (checked {checked})");

    // Below the retained window: typed rejection, not silence.
    let evicted = oldest.checked_sub(1).expect("window moved past epoch 0");
    let resp = client.call_as_of(0, 0, evicted, full_scan_op()).unwrap();
    match resp.body {
        Body::Error { code: ErrorCode::BadRequest, message } => {
            assert!(message.contains("not retained"), "unexpected message: {message}")
        }
        other => panic!("evicted as_of answered {other:?}"),
    }
    // And an as_of on a target with no version history is Unsupported by
    // admission — updates likewise must address the head.
    match client.call_as_of(0, 0, 3, Op::Insert(Point { x: 1, y: 1, id: 99 })).unwrap().body {
        Body::Error { code: ErrorCode::BadRequest, .. } => {}
        other => panic!("versioned update answered {other:?}"),
    }

    handle.shutdown();
    handle.join();
}

fn full_scan_op() -> Op {
    Op::TwoSided { x0: i64::MIN, y0: i64::MIN }
}

/// A pin at the front of the window *blocks* trimming — the pinned epoch
/// stays addressable and none of its pages are reclaimed, however far the
/// head churns past the retention target. Releasing the pin (plus one
/// `collect`) lets the whole deferred backlog go at once.
#[test]
fn gc_never_reclaims_pinned_epochs() {
    let seed = seed();
    let initial = initial_points(300, seed ^ 2);
    let (handle, store) = spawn(&initial, 2);
    let versions = Arc::clone(handle.versions());

    let snap = versions.snapshot();
    let pinned_seq = snap.seq();
    let frozen = open_frozen(&snap, &store);
    let before = frozen_scan(&snap, &frozen, &store);

    let mut client = Client::connect(handle.addr(), Duration::from_secs(5)).unwrap();
    let mut rng = Rng::seed_from_u64(seed ^ 0x6C);
    for i in 0..10u64 {
        let p = Point {
            x: rng.gen_range(0..=DOMAIN),
            y: rng.gen_range(0..=DOMAIN),
            id: 50_000_000 + i,
        };
        acked(client.call(0, 0, Op::Insert(p)));
    }

    // The pin held the retention window open far past `retain = 2`: the
    // pinned epoch is still addressable and nothing below it was freed.
    let m = versions.metrics();
    assert_eq!(m.oldest_seq, pinned_seq, "pinned front epoch must anchor the window");
    assert!(m.retained > 2, "pin must block trimming: {m:?}");
    assert_eq!(m.pinned, 1);
    assert_eq!(
        m.reclaimed_pages, 0,
        "no page may be reclaimed while the oldest epoch is pinned: {m:?}"
    );
    versions.snapshot_at(pinned_seq).expect("pinned epoch stays addressable");
    // ...and the pin still answers bit-identically under the churn.
    assert_eq!(frozen_scan(&snap, &frozen, &store), before, "pinned epoch was reclaimed");

    // Releasing the pin lets the deferred reclamation go.
    drop(snap);
    let freed = versions.collect().unwrap();
    assert!(freed > 0, "releasing the pin must reclaim the CoW backlog");
    let m = versions.metrics();
    assert_eq!(m.pinned, 0);
    assert_eq!(m.retained, 2, "window trims to the retention target once unpinned");
    assert!(m.oldest_seq > pinned_seq);
    match versions.snapshot_at(pinned_seq) {
        Err(StoreError::VersionNotRetained { requested, oldest, .. }) => {
            assert_eq!(requested, pinned_seq);
            assert!(oldest > pinned_seq);
        }
        Ok(_) => panic!("released epoch {pinned_seq} must leave the window"),
        Err(e) => panic!("unexpected error: {e}"),
    }

    handle.shutdown();
    handle.join();
}

/// Seeded interleavings of installs, pins, drops, pinned reads and `as_of`
/// reads — the property form of the three pinned contracts above.
#[test]
fn seeded_interleavings_preserve_snapshot_isolation() {
    let base_seed = seed();
    for round in 0..3u64 {
        let seed = base_seed ^ (round.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let initial = initial_points(150, seed ^ 3);
        let (handle, store) = spawn(&initial, 8);
        let versions = Arc::clone(handle.versions());
        let mut client = Client::connect(handle.addr(), Duration::from_secs(5)).unwrap();

        let ref_store = PageStore::in_memory(PAGE);
        let mut reference = DynamicPst::build(&ref_store, &initial).unwrap();
        let scan_ref = |r: &DynamicPst| {
            let mut v = r.query(&ref_store, TwoSided { x0: i64::MIN, y0: i64::MIN }).unwrap();
            v.sort_unstable_by_key(|p| (p.x, p.y, p.id));
            v
        };

        let mut rng = Rng::seed_from_u64(seed);
        let mut live = initial.clone();
        let mut next_id = 60_000_000u64;
        // Reference state per installed epoch (index = seq).
        let mut states: Vec<Vec<Point>> = vec![scan_ref(&reference)];
        // (snapshot, its frozen view, the state it must keep answering).
        let mut pins: Vec<(Snapshot, DynamicPst, Vec<Point>)> = Vec::new();

        for step in 0..60 {
            match rng.gen_range(0..6u64) {
                // Install one more epoch (insert or delete, acked).
                0 | 1 => {
                    let op = if !live.is_empty() && rng.gen_bool(0.35) {
                        Op::Delete(live.swap_remove(rng.gen_range(0..live.len())))
                    } else {
                        next_id += 1;
                        let p = Point {
                            x: rng.gen_range(0..=DOMAIN),
                            y: rng.gen_range(0..=DOMAIN),
                            id: next_id,
                        };
                        live.push(p);
                        Op::Insert(p)
                    };
                    acked(client.call(0, 0, op.clone()));
                    match &op {
                        Op::Insert(p) => reference.insert(&ref_store, *p).unwrap(),
                        Op::Delete(p) => reference.delete(&ref_store, *p).unwrap(),
                        _ => unreachable!(),
                    }
                    states.push(scan_ref(&reference));
                    assert_eq!(versions.current_seq() as usize + 1, states.len());
                }
                // Pin the head.
                2 => {
                    if pins.len() < 4 {
                        let snap = versions.snapshot();
                        let frozen = open_frozen(&snap, &store);
                        let want = states[snap.seq() as usize].clone();
                        pins.push((snap, frozen, want));
                    }
                }
                // Drop a pin.
                3 => {
                    if !pins.is_empty() {
                        pins.swap_remove(rng.gen_range(0..pins.len()));
                    }
                }
                // Read a pinned snapshot: bit-identical to its pin state.
                4 => {
                    if !pins.is_empty() {
                        let (snap, frozen, want) = &pins[rng.gen_range(0..pins.len())];
                        assert_eq!(
                            &frozen_scan(snap, frozen, &store),
                            want,
                            "round {round} step {step}: pinned seq {} diverged",
                            snap.seq()
                        );
                    }
                }
                // Read a retained epoch over the wire. `as_of = 0` is the
                // wire's "current head" sentinel, so epoch 0 itself is only
                // addressable until the first install; sample above it.
                _ => {
                    let (oldest, current) = versions.retained_range();
                    if current == 0 {
                        continue;
                    }
                    let v = rng.gen_range(oldest.max(1)..=current);
                    let resp = client.call_as_of(0, 0, v, full_scan_op()).unwrap();
                    let Body::Points(got) = canonicalize(resp.body) else {
                        panic!("as_of body")
                    };
                    assert_eq!(
                        got, states[v as usize],
                        "round {round} step {step}: as_of({v}) diverged"
                    );
                }
            }
        }

        // Every surviving pin is still intact at the end.
        for (snap, frozen, want) in &pins {
            assert_eq!(&frozen_scan(snap, frozen, &store), want, "round {round}: final pin check");
        }
        drop(pins);
        handle.shutdown();
    handle.join();
    }
}
