//! Scatter-gather merge correctness: the router's answer over a sharded
//! fabric must be **bit-identical** to a single-node reference over the
//! same data, for every query kind, across shard counts 1–8 and random
//! split points, with dynamic updates interleaved throughout.
//!
//! Each shard registers the same target layout (0 = B-tree keys,
//! 1 = cached segment tree, 2 = dynamic PST, 3 = dynamic 3-sided PST)
//! over its slice of the data: points and entries partitioned by x/key,
//! intervals replicated onto every shard their span overlaps. The
//! reference side is the raw structures over one unpartitioned store.
//! Both answers go through [`pc_serve::canonicalize`] — the router's
//! merge order contract — before comparison.
//!
//! Seed comes from `PC_CHAOS_SEED` when set, so a failing run is
//! reproducible exactly.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

use pc_btree::BTree;
use pc_pagestore::{Interval, PageStore, Point};
use pc_pst::{DynamicPst, DynamicThreeSidedPst, ThreeSided, TwoSided};
use pc_rng::Rng;
use pc_segtree::CachedSegmentTree;
use pc_serve::wire::{Body, ErrorCode, Op};
use pc_serve::{
    canonicalize, BTreeTarget, Client, DynamicPstTarget, DynamicThreeSidedTarget, FrontendConfig,
    Registry, Router, RouterConfig, RouterFrontend, SegTreeTarget, Server, ServerConfig,
    ServerHandle, Service, ShardMap,
};
use pc_workloads::{
    gen_intervals, gen_points, gen_range_1d, gen_stabbing, gen_three_sided, gen_two_sided,
    IntervalDist, PointDist, DOMAIN,
};

const PAGE: usize = 512;

fn seed() -> u64 {
    std::env::var("PC_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0x4257_ED6E)
}

/// `count` distinct random split points — empty shards are legal and part
/// of what this suite covers.
fn random_splits(rng: &mut Rng, count: usize) -> Vec<i64> {
    let mut set = BTreeSet::new();
    while set.len() < count {
        set.insert(rng.gen_range(1..DOMAIN));
    }
    set.into_iter().collect()
}

/// One shard node over its slice of the data; target wire ids are the
/// registration order and identical on every shard.
fn spawn_shard(
    entries: &[(i64, u64)],
    intervals: &[Interval],
    points: &[Point],
) -> ServerHandle {
    let store = Arc::new(PageStore::in_memory(PAGE));
    let mut registry = Registry::new();
    registry.register("keys", Box::new(BTreeTarget(BTree::bulk_build(&store, entries).unwrap())));
    registry.register(
        "segtree",
        Box::new(SegTreeTarget(CachedSegmentTree::build(&store, intervals).unwrap())),
    );
    registry.register(
        "dyn",
        Box::new(DynamicPstTarget::new(DynamicPst::build(&store, points).unwrap())),
    );
    registry.register(
        "dyn3",
        Box::new(DynamicThreeSidedTarget::new(DynamicThreeSidedPst::build(&store, points).unwrap())),
    );
    let cfg = ServerConfig { workers: 2, ..ServerConfig::default() };
    Server::spawn(Service { store, registry }, cfg).unwrap()
}

#[test]
fn router_answers_bit_identical_across_shard_counts() {
    let seed = seed();
    let mut rng = Rng::seed_from_u64(seed);

    for shards in 1..=8usize {
        // Fresh data per shard count (the dynamic reference mutates).
        let dseed = seed ^ (shards as u64);
        let points: Vec<Point> = gen_points(1_200, PointDist::Uniform, dseed)
            .iter()
            .map(|&(x, y, id)| Point { x, y, id })
            .collect();
        let intervals: Vec<Interval> = gen_intervals(400, IntervalDist::LongTail, dseed ^ 1)
            .iter()
            .map(|&(lo, hi, id)| Interval { lo, hi, id })
            .collect();
        let mut entries: Vec<(i64, u64)> = points.iter().map(|p| (p.x, p.id)).collect();
        entries.sort_unstable();
        entries.dedup_by_key(|e| e.0);

        let splits = random_splits(&mut rng, shards - 1);
        let map = ShardMap::new(splits.clone());
        let e_parts = map.partition_entries(&entries);
        let i_parts = map.partition_intervals(&intervals);
        let p_parts = map.partition_points(&points);
        let mut handles = Vec::new();
        let mut groups = Vec::new();
        for s in 0..map.shards() {
            let handle = spawn_shard(&e_parts[s], &i_parts[s], &p_parts[s]);
            groups.push(vec![handle.addr()]);
            handles.push(handle);
        }
        let router = Arc::new(
            Router::connect(
                &groups,
                splits.clone(),
                RouterConfig {
                    health_interval: Duration::from_millis(200),
                    seed: seed ^ 0xF00,
                    ..RouterConfig::default()
                },
            )
            .unwrap(),
        );

        // The single-node reference: same data, one store, no service code.
        let ref_store = PageStore::in_memory(PAGE);
        let btree = BTree::bulk_build(&ref_store, &entries).unwrap();
        let segtree = CachedSegmentTree::build(&ref_store, &intervals).unwrap();
        let mut dynpst = DynamicPst::build(&ref_store, &points).unwrap();
        let mut dyn3 = DynamicThreeSidedPst::build(&ref_store, &points).unwrap();

        let keys: Vec<i64> = entries.iter().map(|&(k, _)| k).collect();
        let raw_intervals: Vec<(i64, i64, u64)> =
            intervals.iter().map(|iv| (iv.lo, iv.hi, iv.id)).collect();
        let mut live: Vec<Point> = points.clone();
        let mut next_id = 10_000_000u64;

        for round in 0..4u64 {
            let rseed = dseed ^ (round << 16);

            for q in gen_range_1d(&keys, 6, 24, rseed ^ 2) {
                let want = canonicalize(Body::Keys(
                    btree.range(&ref_store, &q.lo, &q.hi).unwrap(),
                ));
                let got = router.query(0, 0, &Op::Range1d { lo: q.lo, hi: q.hi }).unwrap();
                assert_eq!(got, want, "range {q:?} diverged at {shards} shard(s)");
            }
            for q in gen_stabbing(&raw_intervals, 6, rseed ^ 3) {
                let want =
                    canonicalize(Body::Intervals(segtree.stab(&ref_store, q.q).unwrap()));
                let got = router.query(1, 0, &Op::Stab { q: q.q }).unwrap();
                assert_eq!(got, want, "stab {q:?} diverged at {shards} shard(s)");
            }
            let raw_live: Vec<(i64, i64, u64)> =
                live.iter().map(|p| (p.x, p.y, p.id)).collect();
            for q in gen_two_sided(&raw_live, 6, 48, rseed ^ 4) {
                let want = canonicalize(Body::Points(
                    dynpst.query(&ref_store, TwoSided { x0: q.x0, y0: q.y0 }).unwrap(),
                ));
                let got = router.query(2, 0, &Op::TwoSided { x0: q.x0, y0: q.y0 }).unwrap();
                assert_eq!(got, want, "2-sided {q:?} diverged at {shards} shard(s)");
            }
            for q in gen_three_sided(&raw_live, 6, 48, rseed ^ 5) {
                let want = canonicalize(Body::Points(
                    dyn3.query(&ref_store, ThreeSided { x1: q.x1, x2: q.x2, y0: q.y0 })
                        .unwrap(),
                ));
                let got = router
                    .query(3, 0, &Op::ThreeSided { x1: q.x1, x2: q.x2, y0: q.y0 })
                    .unwrap();
                assert_eq!(got, want, "3-sided {q:?} diverged at {shards} shard(s)");
            }
            // The everything-query scatters across every shard and merges
            // the full live set — the hardest merge-order case.
            let want_all = canonicalize(Body::Points(
                dynpst.query(&ref_store, TwoSided { x0: i64::MIN, y0: i64::MIN }).unwrap(),
            ));
            let got_all =
                router.query(2, 0, &Op::TwoSided { x0: i64::MIN, y0: i64::MIN }).unwrap();
            assert_eq!(got_all, want_all, "full scan diverged at {shards} shard(s)");

            // Interleaved dynamic updates through the router (routed to the
            // owning shard) and applied to the reference in lockstep.
            for _ in 0..12 {
                next_id += 1;
                let p = Point {
                    x: rng.gen_range(0..=DOMAIN),
                    y: rng.gen_range(0..=DOMAIN),
                    id: next_id,
                };
                for target in [2u16, 3u16] {
                    match router.update(target, 0, &Op::Insert(p)).unwrap() {
                        Body::Ack { .. } => {}
                        other => panic!("insert ack expected, got {other:?}"),
                    }
                }
                dynpst.insert(&ref_store, p).unwrap();
                dyn3.insert(&ref_store, p).unwrap();
                live.push(p);
            }
            for _ in 0..6 {
                let victim = live.swap_remove(rng.gen_range(0..live.len()));
                for target in [2u16, 3u16] {
                    match router.update(target, 0, &Op::Delete(victim)).unwrap() {
                        Body::Ack { .. } => {}
                        other => panic!("delete ack expected, got {other:?}"),
                    }
                }
                dynpst.delete(&ref_store, victim).unwrap();
                dyn3.delete(&ref_store, victim).unwrap();
            }
        }

        // A sample of the same comparisons through the wire front-end, so
        // the full client → frontend → scatter → merge → frame path is
        // covered, plus typed-error passthrough.
        let frontend =
            RouterFrontend::spawn(Arc::clone(&router), FrontendConfig::default()).unwrap();
        let mut client = Client::connect(frontend.addr(), Duration::from_secs(10)).unwrap();
        let raw_live: Vec<(i64, i64, u64)> = live.iter().map(|p| (p.x, p.y, p.id)).collect();
        for q in gen_two_sided(&raw_live, 5, 48, dseed ^ 7) {
            let want = canonicalize(Body::Points(
                dynpst.query(&ref_store, TwoSided { x0: q.x0, y0: q.y0 }).unwrap(),
            ));
            let got = client.call(2, 0, Op::TwoSided { x0: q.x0, y0: q.y0 }).unwrap().body;
            assert_eq!(got, want, "wire 2-sided {q:?} diverged at {shards} shard(s)");
        }
        // A stab against the B-tree target is Unsupported on whatever shard
        // owns it; the code must come back verbatim through the router.
        match client.call(0, 0, Op::Stab { q: DOMAIN / 2 }).unwrap().body {
            Body::Error { code, .. } => assert_eq!(code, ErrorCode::Unsupported),
            other => panic!("expected typed error, got {other:?}"),
        }

        router.shutdown();
        for handle in handles {
            handle.join();
        }
        frontend.join();
    }
}
