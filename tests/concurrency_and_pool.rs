//! Concurrency and buffer-pool behaviour of the storage substrate and the
//! read-only index structures.
//!
//! `PageStore` hands out immutable `Arc`-backed page snapshots, and its
//! buffer pool is sharded — an access locks only the shard its page hashes
//! to — so a *static* index can be queried from many threads at once in
//! both strict and pooled mode; these tests pin that contract down (and
//! the E15 experiment plus the `pool_scaling` bench measure throughput).

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use path_caching::{
    DiagonalCorner, Interval, PageStore, Point, PointIndex, Quadrant, TwoSided, Variant,
};
use pc_workloads::{gen_points, gen_two_sided, PointDist};

fn to_points(raw: &[(i64, i64, u64)]) -> Vec<Point> {
    raw.iter().map(|&(x, y, id)| Point::new(x, y, id)).collect()
}

#[test]
fn parallel_queries_agree_with_serial() {
    let raw = gen_points(20_000, PointDist::Uniform, 31);
    let points = to_points(&raw);
    let store = PageStore::in_memory(1024);
    let index = PointIndex::build(&store, &points, Variant::TwoLevel).unwrap();
    let queries = gen_two_sided(&raw, 64, 500, 32);

    // Serial reference.
    let serial: Vec<usize> = queries
        .iter()
        .map(|q| index.query(&store, TwoSided { x0: q.x0, y0: q.y0 }).unwrap().len())
        .collect();

    // 8 threads × all queries, interleaved.
    let errors = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..8 {
            s.spawn(|| {
                for (i, q) in queries.iter().enumerate() {
                    let got = index
                        .query(&store, TwoSided { x0: q.x0, y0: q.y0 })
                        .unwrap()
                        .len();
                    if got != serial[i] {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert_eq!(errors.load(Ordering::Relaxed), 0);
}

#[test]
fn pooled_store_returns_identical_results_with_fewer_backend_reads() {
    let raw = gen_points(20_000, PointDist::Uniform, 33);
    let points = to_points(&raw);
    let queries = gen_two_sided(&raw, 40, 500, 34);

    let strict = PageStore::in_memory(1024);
    let idx_strict = PointIndex::build(&strict, &points, Variant::Segmented).unwrap();
    let pooled = PageStore::in_memory_pooled(1024, 256);
    let idx_pooled = PointIndex::build(&pooled, &points, Variant::Segmented).unwrap();

    strict.reset_stats();
    pooled.reset_stats();
    for q in &queries {
        let a = idx_strict.query(&strict, TwoSided { x0: q.x0, y0: q.y0 }).unwrap();
        let b = idx_pooled.query(&pooled, TwoSided { x0: q.x0, y0: q.y0 }).unwrap();
        let mut ia: Vec<u64> = a.iter().map(|p| p.id).collect();
        let mut ib: Vec<u64> = b.iter().map(|p| p.id).collect();
        ia.sort_unstable();
        ib.sort_unstable();
        assert_eq!(ia, ib);
    }
    let s = strict.stats();
    let p = pooled.stats();
    assert_eq!(p.reads + p.cache_hits, s.reads, "same logical access pattern");
    assert!(
        p.reads < s.reads,
        "pool absorbed nothing: {} vs {}",
        p.reads,
        s.reads
    );
    // Hot pages (skeletal roots, caches) should give a solid hit rate.
    let hit_rate = p.cache_hits as f64 / (p.cache_hits + p.reads) as f64;
    assert!(hit_rate > 0.3, "hit rate only {hit_rate:.2}");
}

#[test]
fn parallel_queries_against_pooled_store_agree_with_serial() {
    let raw = gen_points(20_000, PointDist::Uniform, 37);
    let points = to_points(&raw);
    let store = PageStore::in_memory_pooled(1024, 256);
    let index = PointIndex::build(&store, &points, Variant::Segmented).unwrap();
    let queries = gen_two_sided(&raw, 64, 500, 38);
    store.reset_stats();

    let serial: Vec<usize> = queries
        .iter()
        .map(|q| index.query(&store, TwoSided { x0: q.x0, y0: q.y0 }).unwrap().len())
        .collect();
    let serial_logical = {
        let s = store.stats();
        s.reads + s.cache_hits
    };
    store.reset_stats();

    let errors = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..8 {
            s.spawn(|| {
                for (i, q) in queries.iter().enumerate() {
                    let got = index
                        .query(&store, TwoSided { x0: q.x0, y0: q.y0 })
                        .unwrap()
                        .len();
                    if got != serial[i] {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert_eq!(errors.load(Ordering::Relaxed), 0);
    // Logical access accounting stays exact across shards: 8 threads ran
    // the same read-only access pattern, so reads + hits = 8 × serial.
    let s = store.stats();
    assert_eq!(
        s.reads + s.cache_hits,
        8 * serial_logical,
        "per-shard counters must not drop increments"
    );
}

#[test]
fn pooled_file_backed_store_round_trips() {
    let dir = std::env::temp_dir().join(format!("pc-poolfile-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("pooled.pcdb");
    let raw = gen_points(5_000, PointDist::Uniform, 35);
    let points = to_points(&raw);
    {
        let backend = pc_pagestore::backend::FileBackend::open(&path, 1024 + 8).unwrap();
        let store = pc_pagestore::PageStore::new(
            pc_pagestore::StoreConfig {
                page_size: 1024,
                pool_pages: 64,
                pool_shards: 4,
                ..pc_pagestore::StoreConfig::strict(1024)
            },
            Box::new(backend),
        );
        let index = PointIndex::build(&store, &points, Variant::Segmented).unwrap();
        store.sync().unwrap();
        let q = TwoSided { x0: 500_000, y0: 500_000 };
        let want = points.iter().filter(|p| q.contains(p)).count();
        assert_eq!(index.query(&store, q).unwrap().len(), want);
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn diagonal_corner_queries_match_definition() {
    let raw = gen_points(8_000, PointDist::Diagonal { width: 100_000 }, 36);
    let points = to_points(&raw);
    let store = PageStore::in_memory(1024);
    let index =
        PointIndex::build_oriented(&store, &points, Variant::TwoLevel, Quadrant::NorthWest)
            .unwrap();
    for q in [0i64, 100_000, 500_000, 999_999] {
        let dc = DiagonalCorner { q };
        let mut got: Vec<u64> =
            index.query_diagonal(&store, dc).unwrap().iter().map(|p| p.id).collect();
        got.sort_unstable();
        let mut want: Vec<u64> =
            points.iter().filter(|p| dc.contains(p)).map(|p| p.id).collect();
        want.sort_unstable();
        assert_eq!(got, want, "q={q}");
    }
}

#[test]
fn diagonal_corner_equals_interval_stabbing() {
    // The [KRV] reduction in both directions: stabbing via IntervalStore
    // equals a diagonal-corner query over the (lo, hi) point set with the
    // x-axis un-negated.
    use path_caching::IntervalStore;
    let store = PageStore::in_memory(1024);
    let intervals: Vec<Interval> =
        (0..3000).map(|i| Interval::new(i % 500, i % 500 + i % 97 + 1, i as u64)).collect();
    let ivs = IntervalStore::with_intervals(&store, &intervals).unwrap();
    let as_points: Vec<Point> =
        intervals.iter().map(|iv| Point::new(iv.lo, iv.hi, iv.id)).collect();
    let idx =
        PointIndex::build_oriented(&store, &as_points, Variant::Segmented, Quadrant::NorthWest)
            .unwrap();
    let mut counts: HashMap<i64, (usize, usize)> = HashMap::new();
    for q in [0i64, 100, 250, 499, 600] {
        let a = ivs.stab(&store, q).unwrap().len();
        let b = idx.query_diagonal(&store, DiagonalCorner { q }).unwrap().len();
        counts.insert(q, (a, b));
        assert_eq!(a, b, "q={q}");
    }
}
