//! Bounded-journal regression for the shard fabric.
//!
//! The router's per-shard journal of acked updates is what replays a dead
//! replica back into sync — but before truncation it grew for the router's
//! whole lifetime. This suite pins the bound:
//!
//! 1. with every replica healthy, each acked update is reclaimed as soon as
//!    the fan-out settles — the retained journal stays at **zero** no matter
//!    how many updates flow (`pc_shard_journal_truncated` counts them);
//! 2. a dead replica pins the journal at exactly its lag — retained growth
//!    tracks the slowest cursor, not uptime;
//! 3. journal replay still works *after* truncation: the retained tail sits
//!    above a non-zero base offset, the revived replica replays only the
//!    entries it actually misses, and once it is caught up the journal
//!    drains back to zero;
//! 4. every replica answers the full scan bit-identically afterwards, and a
//!    below-base replay cursor is clamped into the journal's live window
//!    instead of addressing reclaimed entries.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pc_pagestore::{PageStore, Point};
use pc_pst::DynamicPst;
use pc_serve::wire::{Body, Op};
use pc_serve::{
    canonicalize, Client, DynamicPstTarget, Registry, Router, RouterConfig, Server, ServerConfig,
    ServerHandle, Service,
};
use pc_workloads::{gen_points, PointDist, DOMAIN};

const PAGE: usize = 512;
const SEED: u64 = 0x10C4_13D2;

fn spawn_node(points: &[Point]) -> ServerHandle {
    let store = Arc::new(PageStore::in_memory(PAGE));
    let target = DynamicPstTarget::new(DynamicPst::build(&store, points).unwrap());
    let mut registry = Registry::new();
    registry.register("dyn", Box::new(target));
    let cfg = ServerConfig { workers: 2, ..ServerConfig::default() };
    Server::spawn(Service { store, registry }, cfg).unwrap()
}

/// Sums one `pc_shard_*` family across shards from the stat pairs.
fn stat(router: &Router, family: &str) -> u64 {
    let prefix = format!("{family}{{");
    router.stat_pairs().iter().filter(|(k, _)| k.starts_with(&prefix)).map(|&(_, v)| v).sum()
}

fn acked_insert(router: &Router, p: Point) {
    match router.update(0, 0, &Op::Insert(p)) {
        Ok(Body::Ack { .. }) => {}
        other => panic!("insert not acked: {other:?}"),
    }
}

fn full_scan(addr: SocketAddr) -> Body {
    let mut c = Client::connect(addr, Duration::from_secs(5)).unwrap();
    let resp = c.call(0, 0, Op::TwoSided { x0: i64::MIN, y0: i64::MIN }).unwrap();
    canonicalize(resp.body)
}

fn wait_all_healthy(router: &Router, what: &str) {
    let t0 = Instant::now();
    while !router.replica_health().iter().flatten().all(|&h| h) {
        assert!(t0.elapsed() < Duration::from_secs(15), "{what}: fabric never healed");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn journal_stays_bounded_and_replay_survives_truncation() {
    let initial: Vec<Point> = gen_points(200, PointDist::Uniform, SEED)
        .iter()
        .map(|&(x, y, id)| Point { x, y, id })
        .collect();
    let node_a = spawn_node(&initial);
    let node_b = spawn_node(&initial);
    let router = Router::connect(
        &[vec![node_a.addr(), node_b.addr()]],
        Vec::new(),
        RouterConfig { health_interval: Duration::from_millis(25), seed: SEED, ..RouterConfig::default() },
    )
    .unwrap();

    let point = |i: u64| Point {
        x: (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % (DOMAIN as u64 + 1)) as i64,
        y: (i.wrapping_mul(0xC2B2_AE3D_27D4_EB4F) % (DOMAIN as u64 + 1)) as i64,
        id: 20_000_000 + i,
    };
    let mut applied = initial.clone();

    // Phase 1: whole group healthy. Every ack is followed (inside the same
    // journal-lock hold) by truncation of the entry itself, so the retained
    // journal never leaves zero — this is the bound regression would break.
    for i in 0..120 {
        let p = point(i);
        acked_insert(&router, p);
        applied.push(p);
        assert_eq!(
            stat(&router, "pc_shard_journal_len"),
            0,
            "retained journal grew with every replica caught up (after {} acks)",
            i + 1
        );
    }
    assert_eq!(stat(&router, "pc_shard_journal_truncated"), 120);

    // Phase 2: kill one replica. Its cursor freezes, so the journal retains
    // exactly the entries the dead node is missing — lag, not lifetime.
    node_b.kill();
    node_b.join();
    for i in 120..160 {
        let p = point(i);
        acked_insert(&router, p);
        applied.push(p);
    }
    assert_eq!(
        stat(&router, "pc_shard_journal_len"),
        40,
        "retained journal must equal the dead replica's lag"
    );
    assert_eq!(stat(&router, "pc_shard_journal_truncated"), 120);

    // Phase 3: a replacement node holding the state as of the kill (the
    // initial build plus the 120 truncated inserts) re-admits at cursor 120.
    // The replay tail now lives above base offset 120 — the part plain
    // Vec indexing would have gotten wrong after truncation.
    let replacement = spawn_node(&applied[..initial.len() + 120]);
    router.set_replica_caught_up(0, 1, 120);
    router.set_replica_addr(0, 1, replacement.addr());
    wait_all_healthy(&router, "post-replacement");

    let t0 = Instant::now();
    while stat(&router, "pc_shard_journal_len") != 0 {
        assert!(t0.elapsed() < Duration::from_secs(15), "journal never drained after catch-up");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        stat(&router, "pc_shard_replayed_updates_total"),
        40,
        "replay must cover exactly the lag"
    );
    assert_eq!(stat(&router, "pc_shard_journal_truncated"), 160);

    // Both replicas hold the identical acked state.
    let mut want = applied.clone();
    want.sort_unstable_by_key(|p| (p.x, p.y, p.id));
    let want = Body::Points(want);
    assert_eq!(full_scan(node_a.addr()), want, "surviving replica diverged");
    assert_eq!(full_scan(replacement.addr()), want, "replayed replica diverged");

    // A cursor below the truncation base addresses reclaimed entries; the
    // router clamps it into the live window, so the fabric keeps serving
    // acked updates instead of attempting an impossible replay.
    router.set_replica_caught_up(0, 1, 0);
    let p = point(160);
    acked_insert(&router, p);
    assert_eq!(stat(&router, "pc_shard_journal_len"), 0, "clamped cursor must not pin the journal");
    assert_eq!(stat(&router, "pc_shard_journal_truncated"), 161);

    router.shutdown();
    node_a.join();
    replacement.join();
}
