//! Workspace-level integration tests for the `obs` tracing layer: span
//! accounting against ground-truth `IoStats`, and the paper's headline
//! claim (path caching kills wasteful I/O) read off the flight recorder.
//!
//! Everything here serializes on `pc_obs::flight_clear()` + one process
//! lock because the metrics registry and flight recorder are global.
#![cfg(feature = "obs")]

use std::sync::Mutex;

use pc_pagestore::{PageStore, Point};
use pc_pst::{NaivePst, SegmentedPst, TwoSided};

static GUARD: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

fn xorshift(state: &mut u64, bound: i64) -> i64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    (*state % bound as u64) as i64
}

fn random_points(n: usize, domain: i64, seed: u64) -> Vec<Point> {
    let mut s = seed;
    (0..n)
        .map(|id| Point::new(xorshift(&mut s, domain), xorshift(&mut s, domain), id as u64))
        .collect()
}

/// A span tree's I/O totals must equal the store's own transfer counts:
/// the observer hook sees exactly the reads `IoStats` counts (strict
/// mode, so there is no pool to absorb any).
#[test]
fn span_totals_match_store_stats_delta() {
    let _g = lock();
    let pts = random_points(20_000, 100_000, 0xf00d);
    let store = PageStore::in_memory(512);
    let seg = SegmentedPst::build(&store, &pts).unwrap();

    pc_obs::flight_clear();
    let before = store.stats();
    let (res, counters) = seg.query_counted(&store, TwoSided { x0: 40_000, y0: 40_000 }).unwrap();
    let delta = store.stats() - before;

    let traces = pc_obs::flight_top(1);
    assert_eq!(traces.len(), 1, "the query must be recorded");
    let t = &traces[0];
    assert_eq!(t.name, "pst2_segmented");
    assert_eq!(t.total_io, delta.reads, "span subtree reads == IoStats reads");
    assert_eq!(t.total_io, counters.total(), "span reads == QueryCounters total");
    assert_eq!(t.items, res.len() as u64, "output spans reported every result");
    assert!(
        t.search_ios + t.wasteful_ios <= t.total_io,
        "search ({}) + wasteful ({}) cannot exceed total ({})",
        t.search_ios,
        t.wasteful_ios,
        t.total_io
    );
}

/// The paper's Figure 3 pathology, observed through the tracer: on
/// small-output queries the naive structure pays ~log n wasteful
/// transfers while the segmented (path-cached) one stays O(1).
#[test]
fn cached_queries_waste_less_than_naive() {
    let _g = lock();
    let pts = random_points(200_000, 1_000_000, 0xbeef);
    let store = PageStore::in_memory(4096);
    let naive = NaivePst::build(&store, &pts).unwrap();
    let seg = SegmentedPst::build(&store, &pts).unwrap();

    let mut s = 0x1234u64;
    let mut naive_waste = 0u64;
    let mut seg_waste = 0u64;
    for _ in 0..20 {
        // Just beyond the domain: empty output, deepest corner.
        let q = TwoSided { x0: 1_000_001 + xorshift(&mut s, 100), y0: 0 };

        pc_obs::flight_clear();
        naive.query_counted(&store, q).unwrap();
        let t = &pc_obs::flight_top(1)[0];
        assert_eq!(t.name, "pst2_naive");
        naive_waste += t.wasteful_ios;

        pc_obs::flight_clear();
        seg.query_counted(&store, q).unwrap();
        let t = &pc_obs::flight_top(1)[0];
        assert_eq!(t.name, "pst2_segmented");
        seg_waste += t.wasteful_ios;
    }
    assert!(
        naive_waste > 4 * seg_waste.max(1),
        "naive wasteful I/O ({naive_waste}) should dwarf path-cached ({seg_waste})"
    );
}

/// The global metrics registry aggregates per-query facts: ops counted,
/// wasteful I/O attributed, histograms populated, exposition rendered.
#[test]
fn registry_reflects_query_activity() {
    let _g = lock();
    let pts = random_points(5_000, 50_000, 0xabc);
    let store = PageStore::in_memory(512);
    let seg = SegmentedPst::build(&store, &pts).unwrap();

    let before = pc_obs::snapshot();
    for i in 0..10 {
        seg.query(&store, TwoSided { x0: i * 1000, y0: i * 1000 }).unwrap();
    }
    let after = pc_obs::snapshot();

    assert_eq!(after.counter("pc_ops_total") - before.counter("pc_ops_total"), 10);
    assert!(after.counter("pc_io_reads_total") > before.counter("pc_io_reads_total"));
    let hist = after.histogram("pc_op_total_io").expect("op I/O histogram exists");
    assert!(hist.count >= before.histogram("pc_op_total_io").map_or(0, |h| h.count) + 10);

    let text = pc_obs::render_text();
    assert!(text.contains("pc_ops_total"));
    assert!(text.contains("pc_op_latency_ns_bucket"));
    assert!(text.contains("pc_pool_hit_ratio"));
}
