//! Cross-crate integration tests: the public API over generated workloads,
//! the file-backed store, and failure injection.

use std::collections::HashMap;

use path_caching::{
    ClassIndexBuilder, Interval, IntervalStore, PageStore, Point, PointIndex, StoreError,
    ThreeSided, ThreeSidedIndex, TwoSided, Variant,
};
use pc_workloads::{
    gen_intervals, gen_points, gen_stabbing, gen_three_sided, gen_two_sided, IntervalDist,
    PointDist,
};

fn to_points(raw: &[(i64, i64, u64)]) -> Vec<Point> {
    raw.iter().map(|&(x, y, id)| Point::new(x, y, id)).collect()
}

fn to_intervals(raw: &[(i64, i64, u64)]) -> Vec<Interval> {
    raw.iter().map(|&(lo, hi, id)| Interval::new(lo, hi, id)).collect()
}

#[test]
fn point_index_on_every_distribution() {
    let distributions = [
        PointDist::Uniform,
        PointDist::Clustered { clusters: 8, radius: 20_000 },
        PointDist::Diagonal { width: 5_000 },
        PointDist::AntiDiagonal { width: 5_000 },
    ];
    for dist in distributions {
        let raw = gen_points(8_000, dist, 42);
        let points = to_points(&raw);
        let store = PageStore::in_memory(1024);
        let index = PointIndex::build(&store, &points, Variant::TwoLevel).unwrap();
        for q in gen_two_sided(&raw, 15, 400, 7) {
            let query = TwoSided { x0: q.x0, y0: q.y0 };
            let mut got: Vec<u64> =
                index.query(&store, query).unwrap().iter().map(|p| p.id).collect();
            got.sort_unstable();
            let mut want: Vec<u64> =
                points.iter().filter(|p| query.contains(p)).map(|p| p.id).collect();
            want.sort_unstable();
            assert_eq!(got, want, "{dist:?} {query:?}");
        }
    }
}

#[test]
fn three_sided_index_on_workload_queries() {
    let raw = gen_points(8_000, PointDist::Uniform, 9);
    let points = to_points(&raw);
    let store = PageStore::in_memory(1024);
    let index = ThreeSidedIndex::build(&store, &points).unwrap();
    for q in gen_three_sided(&raw, 20, 300, 11) {
        let query = ThreeSided { x1: q.x1, x2: q.x2, y0: q.y0 };
        let mut got: Vec<u64> =
            index.query(&store, query).unwrap().iter().map(|p| p.id).collect();
        got.sort_unstable();
        let mut want: Vec<u64> =
            points.iter().filter(|p| query.contains(p)).map(|p| p.id).collect();
        want.sort_unstable();
        assert_eq!(got, want, "{query:?}");
    }
}

#[test]
fn interval_store_on_every_distribution() {
    let distributions = [
        IntervalDist::UniformLen { max_len: 30_000 },
        IntervalDist::LongTail,
        IntervalDist::Nested { towers: 5 },
        IntervalDist::CommonPoint,
    ];
    for dist in distributions {
        let raw = gen_intervals(4_000, dist, 13);
        let intervals = to_intervals(&raw);
        let store = PageStore::in_memory(1024);
        let ivs = IntervalStore::with_intervals(&store, &intervals).unwrap();
        for stab in gen_stabbing(&raw, 15, 17) {
            let mut got: Vec<u64> =
                ivs.stab(&store, stab.q).unwrap().iter().map(|i| i.id).collect();
            got.sort_unstable();
            let mut want: Vec<u64> =
                intervals.iter().filter(|i| i.contains(stab.q)).map(|i| i.id).collect();
            want.sort_unstable();
            assert_eq!(got, want, "{dist:?} q={}", stab.q);
        }
    }
}

#[test]
fn interval_store_survives_heavy_churn() {
    let store = PageStore::in_memory(512);
    let mut ivs = IntervalStore::new(&store).unwrap();
    let mut oracle: HashMap<u64, Interval> = HashMap::new();
    let mut s = 0xDEAD_BEEFu64;
    let mut rand = move |b: i64| {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s % b as u64) as i64
    };
    for wave in 0..5 {
        // Insert a wave.
        for k in 0..400u64 {
            let id = wave * 1000 + k;
            let lo = rand(20_000);
            let iv = Interval::new(lo, lo + 1 + rand(1_000), id);
            ivs.insert(&store, iv).unwrap();
            oracle.insert(id, iv);
        }
        // Delete half of everything live.
        let keys: Vec<u64> = oracle.keys().copied().collect();
        for (i, k) in keys.iter().enumerate() {
            if i % 2 == 0 {
                let iv = oracle.remove(k).unwrap();
                ivs.remove(&store, iv).unwrap();
            }
        }
        // Verify.
        for _ in 0..5 {
            let q = rand(21_000);
            let mut got: Vec<u64> = ivs.stab(&store, q).unwrap().iter().map(|i| i.id).collect();
            got.sort_unstable();
            let mut want: Vec<u64> =
                oracle.values().filter(|i| i.contains(q)).map(|i| i.id).collect();
            want.sort_unstable();
            assert_eq!(got, want, "wave {wave} q={q}");
        }
    }
}

#[test]
fn class_index_deep_chain() {
    // A pathological 100-deep single chain still answers correctly.
    let store = PageStore::in_memory(512);
    let mut b = ClassIndexBuilder::new();
    let mut chain = vec![b.add_class(None)];
    for _ in 0..99 {
        let next = b.add_class(Some(*chain.last().unwrap()));
        chain.push(next);
    }
    for (i, &c) in chain.iter().enumerate() {
        b.add_object(c, i as i64, i as u64);
    }
    let index = b.build(&store).unwrap();
    // Subtree of depth-k class holds objects k..100 (attr = depth).
    for k in [0usize, 1, 37, 50, 99] {
        let got = index.query_subtree(&store, chain[k], 0).unwrap();
        let want: Vec<u64> = (k as u64..100).collect();
        assert_eq!(got, want, "depth {k}");
        let bounded = index.query_subtree(&store, chain[k], 60).unwrap();
        let want: Vec<u64> = (k.max(60) as u64..100).collect();
        assert_eq!(bounded, want, "depth {k} attr >= 60");
    }
}

#[test]
fn file_backed_index_round_trips() {
    let dir = std::env::temp_dir().join(format!("pc-int-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("points.pcdb");
    let raw = gen_points(3_000, PointDist::Uniform, 99);
    let points = to_points(&raw);
    {
        let store = PageStore::file(&path, 1024).unwrap();
        let index = PointIndex::build(&store, &points, Variant::Segmented).unwrap();
        store.sync().unwrap();
        let q = TwoSided { x0: 500_000, y0: 500_000 };
        let got = index.query(&store, q).unwrap();
        let want = points.iter().filter(|p| q.contains(p)).count();
        assert_eq!(got.len(), want);
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn checksum_corruption_is_detected_not_misread() {
    let store = PageStore::in_memory(512);
    let raw = gen_points(2_000, PointDist::Uniform, 5);
    let points = to_points(&raw);
    let index = PointIndex::build(&store, &points, Variant::Segmented).unwrap();
    // Flip a byte in every live page; all queries must now either succeed
    // (pages untouched by this query) or fail with ChecksumMismatch /
    // Corrupt — never return silently wrong data... we can't verify
    // "never wrong" generically, but we can verify detection fires on the
    // pages the query actually reads.
    for page in 0..store.live_pages() {
        store
            .inject_corruption(pc_pagestore::PageId(page), 3)
            .expect("every low id is allocated in a fresh store");
    }
    let result = index.query(&store, TwoSided { x0: 0, y0: 0 });
    match result {
        Err(StoreError::ChecksumMismatch(_)) | Err(StoreError::Corrupt(_)) => {}
        other => panic!("corruption not detected: {other:?}"),
    }
}

#[test]
fn quickstart_snippet_from_readme() {
    // The README's five-line example, kept compiling forever.
    let store = PageStore::in_memory(4096);
    let points: Vec<Point> = (0..1000).map(|i| Point::new(i, 1000 - i, i as u64)).collect();
    let index = PointIndex::build(&store, &points, Variant::TwoLevel).unwrap();
    let hits = index.query(&store, TwoSided { x0: 500, y0: 400 }).unwrap();
    assert_eq!(hits.len(), 101);
}
