//! Seeded crash-point matrix for the durable page store, and the
//! cross-structure "acked answers survive" check.
//!
//! Two layers:
//!
//! 1. **Raw kill-point matrix** — a mixed alloc/write/free/commit workload
//!    runs over crash-simulated media ([`CrashBackend`] + [`CrashLog`]).
//!    A counting pass learns how many durable I/Os the workload issues
//!    (log appends, log fsyncs, checkpoint log swaps, data-frame writes,
//!    data fsyncs); the matrix then re-runs it dying at *every* one of
//!    them, extracts what durable media would hold, reopens, recovers, and
//!    asserts the recovered store equals a committed batch prefix that
//!    contains every acknowledged batch. Every decision derives from
//!    `(seed, op ordinal)`, so a failure reproduces from its printed
//!    `(seed, kill_at)` pair.
//!
//! 2. **Target kinds** — every query-structure kind the serve layer can
//!    host (btree, segtree, intervaltree, static 2-sided and 3-sided PSTs,
//!    dynamic 2-sided and 3-sided PSTs) is built (and, where supported,
//!    mutated) on a durable store, synced, then scribbled on without a
//!    commit and "crashed". After recovery the store must be bit-identical
//!    to an uncrashed reference run — and the reference run's handle,
//!    queried against the *recovered* store, must answer bit-identically.
//!
//! `scripts/verify.sh --crash` runs this suite in both obs modes.

use std::sync::Arc;

use pc_btree::BTree;
use pc_pagestore::{
    CrashBackend, CrashController, CrashLog, CrashPlan, PageId, PageStore, StoreConfig,
    VersionConfig, VersionedStore, WalConfig,
};
use pc_pst::{DynamicPst, DynamicThreeSidedPst, ThreeSidedPst, TwoLevelPst};
use path_caching::intervaltree::ExternalIntervalTree;
use path_caching::segtree::CachedSegmentTree;
use path_caching::{Interval, Point, ThreeSided, TwoSided};

/// Logical state: every allocated page's id and payload bytes.
type PageImage = Vec<(PageId, Vec<u8>)>;

fn snapshot(store: &PageStore) -> PageImage {
    store
        .allocated_pages()
        .into_iter()
        .map(|id| (id, store.read(id).unwrap().to_vec()))
        .collect()
}

// ---------------------------------------------------------------------------
// Raw kill-point matrix
// ---------------------------------------------------------------------------

const RAW_PAGE: usize = 64;
const RAW_FRAME: usize = RAW_PAGE + 8;
const BATCHES: u8 = 6;

fn raw_cfg() -> StoreConfig {
    StoreConfig::strict(RAW_PAGE)
}

/// Small checkpoint threshold so the six batches cross it several times —
/// the matrix must include kill points inside checkpoints (data-frame
/// writes, data fsync, log swap), not just log appends.
fn raw_wal_cfg() -> WalConfig {
    WalConfig { checkpoint_bytes: 800 }
}

fn batch_payload(batch: u8, slot: u8) -> Vec<u8> {
    let mut v = vec![batch.wrapping_mul(16).wrapping_add(slot); RAW_PAGE];
    v[0] = batch;
    v[1] = slot;
    v
}

/// Runs the deterministic mixed workload. Stops at the first error (the
/// crash) and returns how many batches were acknowledged (committed).
/// When `record` is set (reference run; never crashes) also returns the
/// committed snapshot after each batch, with the initial empty state at
/// index 0.
fn raw_workload(store: &PageStore, record: bool) -> (u64, Vec<PageImage>) {
    let mut snaps = Vec::new();
    if record {
        snaps.push(snapshot(store));
    }
    let mut live: Vec<PageId> = Vec::new();
    let mut acked = 0u64;
    for b in 0..BATCHES {
        let step = || -> pc_pagestore::Result<()> {
            for slot in 0..2u8 {
                let id = store.alloc()?;
                store.write(id, &batch_payload(b, slot))?;
                live.push(id);
            }
            // Overwrite one existing page so replay must apply the *last*
            // image, not the first.
            let target = live[b as usize % live.len()];
            store.write(target, &batch_payload(b, 0xF0))?;
            // Free one page every other batch so Alloc/Free records and
            // free-list order are part of the matrix.
            if b % 2 == 1 && live.len() > 3 {
                let victim = live.remove(0);
                store.free(victim)?;
            }
            store.commit_with(&[b])?;
            Ok(())
        }();
        match step {
            Ok(()) => {
                acked += 1;
                if record {
                    snaps.push(snapshot(store));
                }
            }
            Err(_) => break,
        }
    }
    (acked, snaps)
}

fn crash_media(seed: u64, kill_at: u64) -> (CrashController, Arc<CrashBackend>, Arc<CrashLog>) {
    let ctrl = CrashController::new(CrashPlan { seed, kill_at });
    let backend = Arc::new(CrashBackend::new(RAW_FRAME, ctrl.clone()));
    let log = Arc::new(CrashLog::new(ctrl.clone()));
    (ctrl, backend, log)
}

#[test]
fn kill_point_matrix_every_acked_batch_survives() {
    let seed = 0x9e37_79b9_7f4a_7c15u64;

    // Counting pass: same media, never killed. Doubles as the reference
    // run for the committed-prefix snapshots.
    let (ctrl, backend, log) = crash_media(seed, 0);
    let (store, _) = PageStore::new_durable(
        raw_cfg(),
        Box::new(Arc::clone(&backend)),
        Box::new(Arc::clone(&log)),
        raw_wal_cfg(),
    )
    .unwrap();
    let (acked, snaps) = raw_workload(&store, true);
    assert_eq!(acked, BATCHES as u64);
    let ws = store.wal_stats().unwrap();
    assert!(
        ws.checkpoints >= 2,
        "workload must cross the checkpoint threshold so the matrix covers \
         data writes, data fsyncs and log swaps: {ws:?}"
    );
    let total = ctrl.ops();
    assert!(total > 30, "matrix too small to be interesting: {total} ops");
    drop(store);

    for kill_at in 1..=total {
        let (ctrl, backend, log) = crash_media(seed, kill_at);
        let acked = match PageStore::new_durable(
            raw_cfg(),
            Box::new(Arc::clone(&backend)),
            Box::new(Arc::clone(&log)),
            raw_wal_cfg(),
        ) {
            Ok((store, _)) => raw_workload(&store, false).0,
            // Killed during the open itself: nothing was ever acked.
            Err(_) => 0,
        };
        assert!(ctrl.crashed(), "seed {seed:#x} kill_at {kill_at}: the store must die");

        let (recovered, report) = PageStore::new_durable(
            raw_cfg(),
            Box::new(backend.surviving_backend()),
            Box::new(log.surviving_log()),
            raw_wal_cfg(),
        )
        .unwrap_or_else(|e| {
            panic!("seed {seed:#x} kill_at {kill_at}: recovery must never fail: {e}")
        });
        let state = snapshot(&recovered);
        let idx = snaps.iter().position(|s| s == &state).unwrap_or_else(|| {
            panic!(
                "seed {seed:#x} kill_at {kill_at}: recovered state ({} pages) matches \
                 no committed batch prefix; report: {report:?}",
                state.len()
            )
        });
        assert!(
            idx as u64 >= acked,
            "seed {seed:#x} kill_at {kill_at}: {acked} batches were acked but recovery \
             restored only {idx}; report: {report:?}"
        );
        // The commit meta the recovery reports must agree with the state
        // it restored (meta is the batch index the workload committed).
        if idx > 0 {
            if let Some(meta) = &report.last_commit_meta {
                assert_eq!(meta.as_slice(), &[idx as u8 - 1], "kill_at {kill_at}");
            }
        }
    }
}

#[test]
fn multi_crash_rounds_carry_survivors_forward() {
    // Crash, recover, run more batches on the *survivors*, crash again:
    // durability must compose across rounds. The second round's media are
    // pre-seeded with the first round's surviving bytes via
    // `with_frames`/`with_bytes`.
    let seed = 0x5bd1_e995u64;
    let (_, backend, log) = crash_media(seed, 23);
    let first_acked = match PageStore::new_durable(
        raw_cfg(),
        Box::new(Arc::clone(&backend)),
        Box::new(Arc::clone(&log)),
        raw_wal_cfg(),
    ) {
        Ok((store, _)) => raw_workload(&store, false).0,
        Err(_) => 0,
    };

    // Round two: carry the survivors into fresh crash media and keep going.
    let ctrl2 = CrashController::new(CrashPlan::kill_at(seed ^ 1, 17));
    let backend2 = Arc::new(CrashBackend::with_frames(
        RAW_FRAME,
        ctrl2.clone(),
        backend.surviving_frames(),
    ));
    let log2 = Arc::new(CrashLog::with_bytes(ctrl2.clone(), log.surviving_bytes()));
    let mut second_acked = 0;
    if let Ok((store, report)) = PageStore::new_durable(
        raw_cfg(),
        Box::new(Arc::clone(&backend2)),
        Box::new(Arc::clone(&log2)),
        raw_wal_cfg(),
    ) {
        // Whatever round one acked must already be here.
        assert!(report.clean() || report.replayed_records() > 0 || report.torn_tail);
        second_acked = raw_workload(&store, false).0;
    }

    // Final recovery over round two's survivors must succeed and hold a
    // consistent state with at least as many pages as two committed
    // batches imply — the precise prefix equality is covered by the
    // matrix; here the point is that recovery composes.
    let (recovered, _) = PageStore::new_durable(
        raw_cfg(),
        Box::new(backend2.surviving_backend()),
        Box::new(log2.surviving_log()),
        raw_wal_cfg(),
    )
    .unwrap();
    let state = snapshot(&recovered);
    assert!(
        state.len() as u64 >= first_acked.min(1) + second_acked.min(1),
        "survivors lost acked state: round1={first_acked} round2={second_acked}, \
         {} pages",
        state.len()
    );
}

// ---------------------------------------------------------------------------
// All target kinds answer bit-identically after crash recovery
// ---------------------------------------------------------------------------

const PAGE: usize = 512;

fn durable_cfg() -> StoreConfig {
    StoreConfig::strict(PAGE)
}

fn points(n: i64) -> Vec<Point> {
    (0..n).map(|i| Point { x: (i * 7) % 101, y: (i * 13) % 97, id: i as u64 }).collect()
}

fn intervals(n: i64) -> Vec<Interval> {
    (0..n).map(|i| Interval { lo: i * 5, hi: i * 5 + 20 + (i % 13), id: i as u64 }).collect()
}

/// Builds a kind on `store`, mutates it (where supported), syncs, and
/// returns the handle plus its canonical answers.
///
/// The harness then replays the same construction on crash media, adds
/// *uncommitted* scribbles, dies, recovers, and checks the recovered store
/// against the reference: identical pages, identical answers (queried
/// through the reference handle — page ids line up because the build is
/// deterministic).
fn check_kind<H>(
    name: &str,
    build: impl Fn(&PageStore) -> H,
    answer: impl Fn(&H, &PageStore) -> Vec<String>,
) {
    for (cp_name, checkpoint_bytes) in [("replay-only", u64::MAX), ("checkpointed", 4096)] {
        let wal_cfg = WalConfig { checkpoint_bytes };

        // Reference: plain durable in-memory store, never crashed.
        let ctx = format!("{name}/{cp_name}");
        let (ref_store, _) = PageStore::new_durable(
            durable_cfg(),
            Box::new(pc_pagestore::backend::MemBackend::new(PAGE + 8)),
            Box::new(pc_pagestore::MemLog::new()),
            wal_cfg,
        )
        .unwrap();
        let handle = build(&ref_store);
        ref_store.sync().unwrap();
        let want_state = snapshot(&ref_store);
        let want_answers = answer(&handle, &ref_store);
        assert!(
            want_answers.iter().any(|a| !a.is_empty()),
            "{ctx}: queries must return something or the test is vacuous"
        );

        for seed in 0..4u64 {
            let ctrl = CrashController::new(CrashPlan::count_only(seed));
            let backend = Arc::new(CrashBackend::new(PAGE + 8, ctrl.clone()));
            let log = Arc::new(CrashLog::new(ctrl));
            let (store, _) = PageStore::new_durable(
                durable_cfg(),
                Box::new(Arc::clone(&backend)),
                Box::new(Arc::clone(&log)),
                wal_cfg,
            )
            .unwrap();
            let _crash_handle = build(&store);
            store.sync().unwrap();

            // Unacknowledged tail: a fresh page plus an overwrite of a
            // live one, never committed. Recovery must erase both.
            let scratch = store.alloc().unwrap();
            store.write(scratch, &[0xAB; 64]).unwrap();
            if let Some(&victim) = store.allocated_pages().first() {
                store.write(victim, &[0xCD; 64]).unwrap();
            }

            // "Die now": extract durable survivors and recover.
            let (recovered, report) = PageStore::new_durable(
                durable_cfg(),
                Box::new(backend.surviving_backend()),
                Box::new(log.surviving_log()),
                WalConfig::default(),
            )
            .unwrap_or_else(|e| panic!("{ctx} seed {seed}: recovery failed: {e}"));
            assert_eq!(
                snapshot(&recovered),
                want_state,
                "{ctx} seed {seed}: recovered pages differ from the uncrashed run \
                 (report: {report:?})"
            );
            assert_eq!(
                answer(&handle, &recovered),
                want_answers,
                "{ctx} seed {seed}: answers over the recovered store diverge"
            );
        }
    }
}

#[test]
fn btree_answers_survive_crash_recovery() {
    check_kind(
        "btree",
        |store| {
            let mut t: BTree<i64, u64> = BTree::new(store).unwrap();
            for i in 0..200i64 {
                t.insert(store, (i * 17) % 251, i as u64).unwrap();
            }
            for i in 0..20i64 {
                t.delete(store, &((i * 17) % 251)).unwrap();
            }
            t
        },
        |t, store| {
            [(0, 50), (40, 120), (200, 250), (-10, 5)]
                .iter()
                .map(|&(lo, hi)| format!("{:?}", t.range(store, &lo, &hi).unwrap()))
                .collect()
        },
    );
}

#[test]
fn segtree_answers_survive_crash_recovery() {
    check_kind(
        "segtree",
        |store| CachedSegmentTree::build(store, &intervals(80)).unwrap(),
        |t, store| {
            [3, 57, 111, 230, 399]
                .iter()
                .map(|&q| format!("{:?}", t.stab(store, q).unwrap()))
                .collect()
        },
    );
}

#[test]
fn intervaltree_answers_survive_crash_recovery() {
    check_kind(
        "intervaltree",
        |store| ExternalIntervalTree::build(store, &intervals(80)).unwrap(),
        |t, store| {
            [3, 57, 111, 230, 399]
                .iter()
                .map(|&q| format!("{:?}", t.stab(store, q).unwrap()))
                .collect()
        },
    );
}

#[test]
fn static_pst_answers_survive_crash_recovery() {
    check_kind(
        "pst",
        |store| TwoLevelPst::build(store, &points(300)).unwrap(),
        |t, store| {
            [(0, 0), (30, 40), (90, 90)]
                .iter()
                .map(|&(x0, y0)| format!("{:?}", t.query(store, TwoSided { x0, y0 }).unwrap()))
                .collect()
        },
    );
}

#[test]
fn static_pst3_answers_survive_crash_recovery() {
    check_kind(
        "pst3",
        |store| ThreeSidedPst::build(store, &points(300)).unwrap(),
        |t, store| {
            [(0, 100, 0), (20, 60, 30), (50, 55, 80)]
                .iter()
                .map(|&(x1, x2, y0)| {
                    format!("{:?}", t.query(store, ThreeSided { x1, x2, y0 }).unwrap())
                })
                .collect()
        },
    );
}

#[test]
fn dynamic_pst_answers_survive_crash_recovery() {
    check_kind(
        "dynamic_pst",
        |store| {
            let mut t = DynamicPst::build(store, &points(100)).unwrap();
            for i in 0..60i64 {
                t.insert(store, Point { x: 200 + i, y: (i * 11) % 89, id: 5000 + i as u64 })
                    .unwrap();
                // Periodic group commits so the checkpointed variant
                // actually checkpoints mid-workload.
                if i % 16 == 15 {
                    store.sync().unwrap();
                }
            }
            for p in points(100).into_iter().take(15) {
                t.delete(store, p).unwrap();
            }
            t
        },
        |t, store| {
            [(0, 0), (150, 20), (220, 50)]
                .iter()
                .map(|&(x0, y0)| format!("{:?}", t.query(store, TwoSided { x0, y0 }).unwrap()))
                .collect()
        },
    );
}

// ---------------------------------------------------------------------------
// Versioned (MVCC) kill-point matrix: recovery exposes exactly the last
// committed epoch, bit-identical under `as_of`
// ---------------------------------------------------------------------------

const V_FRAME: usize = PAGE + 8;
const V_BATCHES: u64 = 5;

fn version_wal_cfg() -> WalConfig {
    // Small threshold so the matrix includes kills inside checkpoints of
    // version-framed meta, not just inside epoch commits.
    WalConfig { checkpoint_bytes: 6000 }
}

fn versioned_scan(pst: &DynamicPst, store: &PageStore) -> Vec<Point> {
    let mut v = pst.query(store, TwoSided { x0: i64::MIN, y0: i64::MIN }).unwrap();
    v.sort_unstable_by_key(|p| (p.x, p.y, p.id));
    v
}

/// Deterministic versioned workload: build + durable epoch-0 commit, then
/// `V_BATCHES` copy-on-write apply sessions, each installed as the next
/// epoch (which is what group-commits it). Stops at the first error — the
/// crash — and returns how many epochs were acked (`install_as` returned
/// `Ok`), plus, when `record` is set, the full scan at every epoch.
fn versioned_workload(store: &Arc<PageStore>, record: bool) -> (u64, Vec<Vec<Point>>) {
    let mut states: Vec<Vec<Point>> = Vec::new();
    let setup = (|| -> pc_pagestore::Result<DynamicPst> {
        let pst = DynamicPst::build(store, &points(60))?;
        store.commit_with(&pst.descriptor())?;
        Ok(pst)
    })();
    let Ok(mut pst) = setup else { return (0, states) };
    let vs =
        VersionedStore::new(Arc::clone(store), VersionConfig { retain: 3 }, &pst.descriptor());
    if record {
        let snap = vs.snapshot();
        let _g = snap.enter();
        states.push(versioned_scan(&pst, store));
    }
    let mut acked = 0u64;
    let initial = points(60);
    for b in 0..V_BATCHES {
        let session = vs.begin_apply();
        let step = (|| -> pc_pagestore::Result<()> {
            for i in 0..6i64 {
                pst.insert(
                    store,
                    Point {
                        x: 500 + b as i64 * 10 + i,
                        y: (b as i64 * 31 + i * 7) % 97,
                        id: 9000 + b * 10 + i as u64,
                    },
                )?;
            }
            pst.delete(store, initial[b as usize])?;
            Ok(())
        })();
        let installed = match step {
            Ok(()) => session.install_as(b + 1, &pst.descriptor()),
            Err(e) => Err(e), // dropping the session aborts the batch
        };
        match installed {
            Ok(_) => {
                acked += 1;
                if record {
                    // Scans must run under the just-installed epoch's
                    // snapshot: an untranslated read sees the frozen
                    // name-lease slots, not the copy-on-write heads.
                    let snap = vs.snapshot();
                    let _g = snap.enter();
                    states.push(versioned_scan(&pst, store));
                }
            }
            Err(_) => break,
        }
    }
    (acked, states)
}

#[test]
fn versioned_kill_point_matrix_recovers_last_committed_epoch() {
    let seed = 0xE70C_4B1Du64;

    // Counting/reference pass: never killed; records the state per epoch.
    let ctrl = CrashController::new(CrashPlan::count_only(seed));
    let backend = Arc::new(CrashBackend::new(V_FRAME, ctrl.clone()));
    let log = Arc::new(CrashLog::new(ctrl.clone()));
    let (store, _) = PageStore::new_durable(
        durable_cfg(),
        Box::new(Arc::clone(&backend)),
        Box::new(Arc::clone(&log)),
        version_wal_cfg(),
    )
    .unwrap();
    let store = Arc::new(store);
    let (acked, states) = versioned_workload(&store, true);
    assert_eq!(acked, V_BATCHES, "reference run must complete");
    assert_eq!(states.len() as u64, V_BATCHES + 1);
    let total = ctrl.ops();
    assert!(total > 40, "matrix too small to be interesting: {total} ops");
    drop(store);

    // Sample the matrix coarsely (every op would be minutes of rebuilds;
    // the stride still lands inside builds, epoch commits and checkpoints)
    // plus the first/last few ops exactly.
    let kill_points: Vec<u64> =
        (1..=total).filter(|k| *k <= 4 || *k + 4 > total || *k % 7 == 0).collect();
    for kill_at in kill_points {
        let ctrl = CrashController::new(CrashPlan::kill_at(seed, kill_at));
        let backend = Arc::new(CrashBackend::new(V_FRAME, ctrl.clone()));
        let log = Arc::new(CrashLog::new(ctrl.clone()));
        let acked = match PageStore::new_durable(
            durable_cfg(),
            Box::new(Arc::clone(&backend)),
            Box::new(Arc::clone(&log)),
            version_wal_cfg(),
        ) {
            Ok((store, _)) => versioned_workload(&Arc::new(store), false).0,
            Err(_) => 0,
        };
        assert!(ctrl.crashed(), "seed {seed:#x} kill_at {kill_at}: the store must die");

        let (recovered, report) = PageStore::new_durable(
            durable_cfg(),
            Box::new(backend.surviving_backend()),
            Box::new(log.surviving_log()),
            WalConfig::default(),
        )
        .unwrap_or_else(|e| {
            panic!("seed {seed:#x} kill_at {kill_at}: recovery must never fail: {e}")
        });
        let recovered = Arc::new(recovered);
        let Some(meta) = recovered.last_commit_meta() else {
            // Killed before the epoch-0 commit became durable: recovery
            // must have erased the whole uncommitted build.
            assert_eq!(acked, 0, "kill_at {kill_at}: acked an epoch with no durable meta");
            assert!(
                recovered.allocated_pages().is_empty(),
                "kill_at {kill_at}: uncommitted build survived (report: {report:?})"
            );
            continue;
        };

        // Reopen the epoch manager from the recovered commit meta, exactly
        // as `Server::spawn` does on restart.
        let vs =
            VersionedStore::open(Arc::clone(&recovered), Some(&meta), VersionConfig { retain: 3 });
        let s = vs.current_seq();
        assert!(
            s >= acked && s <= acked + 1,
            "kill_at {kill_at}: {acked} epochs acked but recovery exposes seq {s}"
        );
        // Exactly one epoch — the last committed one — is visible.
        assert_eq!(vs.retained_range(), (s, s), "kill_at {kill_at}");
        let snap = vs.snapshot_at(s).unwrap();
        let got = {
            let _g = snap.enter();
            let pst = DynamicPst::open(&recovered, snap.user_meta()).unwrap_or_else(|e| {
                panic!("kill_at {kill_at}: epoch {s} descriptor unusable: {e}")
            });
            versioned_scan(&pst, &recovered)
        };
        assert_eq!(
            got, states[s as usize],
            "seed {seed:#x} kill_at {kill_at}: as_of({s}) diverged after recovery"
        );
    }
}

#[test]
fn dynamic_pst3_answers_survive_crash_recovery() {
    check_kind(
        "dynamic_pst3",
        |store| {
            let mut t = DynamicThreeSidedPst::build(store, &points(100)).unwrap();
            for i in 0..40i64 {
                t.insert(store, Point { x: 300 + i, y: (i * 19) % 71, id: 7000 + i as u64 })
                    .unwrap();
                if i % 16 == 15 {
                    store.sync().unwrap();
                }
            }
            t
        },
        |t, store| {
            [(0, 400, 0), (290, 340, 10)]
                .iter()
                .map(|&(x1, x2, y0)| {
                    format!("{:?}", t.query(store, ThreeSided { x1, x2, y0 }).unwrap())
                })
                .collect()
        },
    );
}
