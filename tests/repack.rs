//! Property tests for van Emde Boas repacking: for every structure kind,
//! a repacked copy must be observationally *bit-identical* — same answers
//! and the same strict-model transfer counts — and [`BlockList`] chains
//! must survive relocation (order and length) even when the destination
//! store satisfies allocations from a scrambled free list.

use pc_rng::check::{check, no_shrink, shrink_vec, Config};
use pc_rng::Rng;

use path_caching::intervaltree::ExternalIntervalTree;
use path_caching::segtree::CachedSegmentTree;
use path_caching::{Interval, PageStore, Point, TwoSided};
use pc_btree::BTree;
use pc_pagestore::layout::BlockList;
use pc_pagestore::repack::{chain_pages, copy_chain, Relocation};
use pc_pagestore::StoreError;
use pc_pst::{SegmentedPst, TwoLevelPst};

macro_rules! ensure_eq {
    ($a:expr, $b:expr, $($arg:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!("{}: {:?} != {:?}", format_args!($($arg)+), a, b));
        }
    }};
}

fn gen_vec<T>(rng: &mut Rng, lo: usize, hi: usize, mut f: impl FnMut(&mut Rng) -> T) -> Vec<T> {
    let n = rng.gen_range(lo..hi);
    (0..n).map(|_| f(rng)).collect()
}

/// Runs `query` against both stores with stats reset, returning the
/// (answer, reads) pairs for comparison.
fn counted<T>(
    store: &PageStore,
    query: impl FnOnce(&PageStore) -> T,
) -> (T, u64) {
    store.reset_stats();
    let out = query(store);
    (out, store.stats().reads)
}

/// B-tree point lookups are bit-identical after repack, transfer counts
/// included.
#[test]
fn repacked_btree_is_bit_identical() {
    let generate = |rng: &mut Rng| {
        let keys = gen_vec(rng, 1, 500, |rng| rng.gen_range(-1000i64..1000));
        let probes = gen_vec(rng, 1, 40, |rng| rng.gen_range(-1100i64..1100));
        (keys, probes)
    };
    let shrink = |(keys, probes): &(Vec<i64>, Vec<i64>)| {
        shrink_vec(keys, no_shrink)
            .into_iter()
            .map(|k| (k, probes.clone()))
            .collect::<Vec<_>>()
    };
    check(&Config::with_cases(24), generate, shrink, |(keys, probes)| {
        let src = PageStore::in_memory(256);
        let mut tree: BTree<i64, u64> = BTree::new(&src).unwrap();
        for &k in keys {
            tree.insert(&src, k, k.unsigned_abs()).unwrap();
        }
        let dst = PageStore::in_memory(256);
        let packed = tree.repack(&src, &dst).unwrap();
        ensure_eq!(dst.live_pages(), src.live_pages(), "live pages");
        for &p in probes {
            let (a, ra) = counted(&src, |s| tree.get(s, &p).unwrap());
            let (b, rb) = counted(&dst, |s| packed.get(s, &p).unwrap());
            ensure_eq!(a, b, "get({p})");
            ensure_eq!(ra, rb, "get({p}) transfers");
        }
        Ok(())
    });
}

/// Cached segment-tree stabs are bit-identical after repack.
#[test]
fn repacked_segtree_is_bit_identical() {
    let generate = |rng: &mut Rng| {
        let raw = gen_vec(rng, 1, 300, |rng| {
            let lo = rng.gen_range(-500i64..500);
            (lo, lo + rng.gen_range(0i64..200))
        });
        let probes = gen_vec(rng, 1, 30, |rng| rng.gen_range(-600i64..800));
        (raw, probes)
    };
    let shrink = |(raw, probes): &(Vec<(i64, i64)>, Vec<i64>)| {
        shrink_vec(raw, no_shrink)
            .into_iter()
            .map(|r| (r, probes.clone()))
            .collect::<Vec<_>>()
    };
    check(&Config::with_cases(16), generate, shrink, |(raw, probes)| {
        let intervals: Vec<Interval> = raw
            .iter()
            .enumerate()
            .map(|(id, &(lo, hi))| Interval::new(lo, hi, id as u64))
            .collect();
        let src = PageStore::in_memory(512);
        let tree = CachedSegmentTree::build(&src, &intervals).unwrap();
        let dst = PageStore::in_memory(512);
        let packed = tree.repack(&src, &dst).unwrap();
        for &q in probes {
            let (a, ra) = counted(&src, |s| ids(tree.stab(s, q).unwrap()));
            let (b, rb) = counted(&dst, |s| ids(packed.stab(s, q).unwrap()));
            ensure_eq!(a, b, "stab({q})");
            ensure_eq!(ra, rb, "stab({q}) transfers");
        }
        Ok(())
    });
}

/// Interval-tree stabs (mini segment trees included) are bit-identical
/// after repack.
#[test]
fn repacked_intervaltree_is_bit_identical() {
    let generate = |rng: &mut Rng| {
        let raw = gen_vec(rng, 1, 300, |rng| {
            let lo = rng.gen_range(-500i64..500);
            (lo, lo + rng.gen_range(0i64..150))
        });
        let probes = gen_vec(rng, 1, 30, |rng| rng.gen_range(-600i64..800));
        (raw, probes)
    };
    let shrink = |(raw, probes): &(Vec<(i64, i64)>, Vec<i64>)| {
        shrink_vec(raw, no_shrink)
            .into_iter()
            .map(|r| (r, probes.clone()))
            .collect::<Vec<_>>()
    };
    check(&Config::with_cases(16), generate, shrink, |(raw, probes)| {
        let intervals: Vec<Interval> = raw
            .iter()
            .enumerate()
            .map(|(id, &(lo, hi))| Interval::new(lo, hi, id as u64))
            .collect();
        let src = PageStore::in_memory(512);
        let tree = ExternalIntervalTree::build(&src, &intervals).unwrap();
        let dst = PageStore::in_memory(512);
        let packed = tree.repack(&src, &dst).unwrap();
        for &q in probes {
            let (a, ra) = counted(&src, |s| ids(tree.stab(s, q).unwrap()));
            let (b, rb) = counted(&dst, |s| ids(packed.stab(s, q).unwrap()));
            ensure_eq!(a, b, "stab({q})");
            ensure_eq!(ra, rb, "stab({q}) transfers");
        }
        Ok(())
    });
}

/// Segmented and two-level PSTs answer 2-sided queries bit-identically
/// after repack.
#[test]
fn repacked_psts_are_bit_identical() {
    let generate = |rng: &mut Rng| {
        let points = gen_vec(rng, 1, 600, |rng| {
            (rng.gen_range(-800i64..800), rng.gen_range(-800i64..800))
        });
        let queries = gen_vec(rng, 1, 25, |rng| {
            (rng.gen_range(-900i64..900), rng.gen_range(-900i64..900))
        });
        (points, queries)
    };
    type Pairs = Vec<(i64, i64)>;
    let shrink = |(points, queries): &(Pairs, Pairs)| {
        shrink_vec(points, no_shrink)
            .into_iter()
            .map(|p| (p, queries.clone()))
            .collect::<Vec<_>>()
    };
    check(&Config::with_cases(12), generate, shrink, |(points, queries)| {
        let pts: Vec<Point> = points
            .iter()
            .enumerate()
            .map(|(id, &(x, y))| Point::new(x, y, id as u64))
            .collect();
        let src = PageStore::in_memory(512);
        let seg = SegmentedPst::build(&src, &pts).unwrap();
        let two = TwoLevelPst::build(&src, &pts).unwrap();
        let dst = PageStore::in_memory(512);
        let seg_packed = seg.repack(&src, &dst).unwrap();
        let two_packed = two.repack(&src, &dst).unwrap();
        for &(x0, y0) in queries {
            let q = TwoSided { x0, y0 };
            let (a, ra) = counted(&src, |s| pids(seg.query(s, q).unwrap()));
            let (b, rb) = counted(&dst, |s| pids(seg_packed.query(s, q).unwrap()));
            ensure_eq!(a, b, "segmented {q:?}");
            ensure_eq!(ra, rb, "segmented {q:?} transfers");
            let (a, ra) = counted(&src, |s| pids(two.query(s, q).unwrap()));
            let (b, rb) = counted(&dst, |s| pids(two_packed.query(s, q).unwrap()));
            ensure_eq!(a, b, "two-level {q:?}");
            ensure_eq!(ra, rb, "two-level {q:?} transfers");
        }
        Ok(())
    });
}

/// A relocated chain preserves record order and page count even when the
/// destination allocator satisfies the relocation from a scrambled free
/// list (freshly freed pages are reused in LIFO order).
#[test]
fn blocklist_chain_survives_relocation_through_a_free_list() {
    let generate = |rng: &mut Rng| {
        let items = gen_vec(rng, 1, 400, |rng| rng.gen_range(-10_000i64..10_000));
        let holes = rng.gen_range(1usize..40);
        (items, holes)
    };
    let shrink = |(items, holes): &(Vec<i64>, usize)| {
        shrink_vec(items, no_shrink)
            .into_iter()
            .map(|v| (v, *holes))
            .collect::<Vec<_>>()
    };
    check(&Config::with_cases(24), generate, shrink, |(items, holes)| {
        let src = PageStore::in_memory(256);
        let ivs: Vec<Interval> =
            items.iter().enumerate().map(|(i, &v)| Interval::new(v, v, i as u64)).collect();
        let list = BlockList::build(&src, &ivs).unwrap();
        let pages = chain_pages(&src, list.head()).unwrap();

        // Seed the destination's free list so alloc order != page order.
        let dst = PageStore::in_memory(256);
        let scratch: Vec<_> = (0..*holes).map(|_| dst.alloc().unwrap()).collect();
        for id in scratch {
            dst.free(id).unwrap();
        }
        // Chains are attached pages in real repacks; here relocate the raw
        // page sequence directly.
        let reloc = Relocation::alloc_in(&pages, &dst).unwrap();
        copy_chain(&src, &dst, list.head(), &reloc).unwrap();
        let moved = list.with_head(reloc.get(list.head()).unwrap());

        ensure_eq!(moved.len(), list.len(), "logical length");
        let dst_pages = chain_pages(&dst, moved.head()).unwrap();
        ensure_eq!(dst_pages.len(), pages.len(), "chain page count");
        let a: Vec<Interval> =
            list.blocks(&src).collect::<Result<Vec<_>, _>>().unwrap().concat();
        let b: Vec<Interval> =
            moved.blocks(&dst).collect::<Result<Vec<_>, _>>().unwrap().concat();
        ensure_eq!(a, b, "record order");
        Ok(())
    });
}

/// Repacking out of a durable store with unflushed dirty pages is refused
/// with the typed error; after a checkpoint it succeeds.
#[test]
fn repack_refuses_dirty_durable_store() {
    let (src, _report) = PageStore::in_memory_durable(256);
    let mut tree: BTree<i64, u64> = BTree::new(&src).unwrap();
    for k in 0..200 {
        tree.insert(&src, k, k as u64).unwrap();
    }
    src.sync().unwrap();
    let dst = PageStore::in_memory(256);
    match tree.repack(&src, &dst) {
        Err(StoreError::DirtyStore { dirty_pages }) => assert!(dirty_pages > 0),
        other => panic!("expected DirtyStore, got {other:?}"),
    }
    src.checkpoint().unwrap();
    let packed = tree.repack(&src, &dst).unwrap();
    assert_eq!(packed.get(&dst, &42).unwrap(), Some(42));
}

fn ids(mut v: Vec<Interval>) -> Vec<u64> {
    let mut out: Vec<u64> = v.drain(..).map(|i| i.id).collect();
    out.sort_unstable();
    out
}

fn pids(mut v: Vec<Point>) -> Vec<u64> {
    let mut out: Vec<u64> = v.drain(..).map(|p| p.id).collect();
    out.sort_unstable();
    out
}
