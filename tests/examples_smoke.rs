//! Smoke tests for the `examples/` entry points: each example's `main` is
//! compiled into this test binary via `#[path]` includes and run end to
//! end at a reduced problem size (`PC_EXAMPLE_N`), so example rot —
//! bit-rotted imports, APIs drifting out from under the docs, broken
//! assertions — is caught by plain `cargo test -q` instead of waiting for
//! a human to run `cargo run --example ...`.

#[path = "../examples/quickstart.rs"]
mod quickstart;

#[path = "../examples/class_hierarchy.rs"]
mod class_hierarchy;

#[path = "../examples/temporal_db.rs"]
mod temporal_db;

#[path = "../examples/storage_tradeoffs.rs"]
mod storage_tradeoffs;

#[path = "../examples/server_quickstart.rs"]
mod server_quickstart;

#[path = "../examples/slowlog_demo.rs"]
mod slowlog_demo;

/// Shrinks every example to a size that runs in well under a second even
/// in debug builds. The returned guard serializes the example runs: every
/// `set_var` and every env read inside an example `main` happens while the
/// lock is held, so the process-global environment is never mutated
/// concurrently with a read.
fn smoke_scale() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    std::env::set_var("PC_EXAMPLE_N", "2000");
    guard
}

#[test]
fn quickstart_core_path_runs() {
    let _serial = smoke_scale();
    quickstart::main().expect("quickstart example must complete");
}

/// The `PC_OBS_DUMP=1` exit hook must work in both builds: with `obs` off
/// it prints a pointer to the feature flag; with `obs` on it renders the
/// metrics exposition and flight-recorder traces, which this test checks
/// were actually populated by the example's queries.
#[test]
fn quickstart_obs_dump_runs() {
    let _serial = smoke_scale();
    std::env::set_var("PC_OBS_DUMP", "1");
    if pc_obs::enabled() {
        pc_obs::flight_clear();
    }
    let res = quickstart::main();
    std::env::remove_var("PC_OBS_DUMP");
    res.expect("quickstart example must complete with PC_OBS_DUMP=1");
    if pc_obs::enabled() {
        let traces = pc_obs::flight_top(3);
        assert!(!traces.is_empty(), "example queries must reach the flight recorder");
        assert!(
            pc_obs::render_text().contains("pc_ops_total"),
            "metrics exposition must include the ops counter"
        );
    }
}

#[test]
fn class_hierarchy_core_path_runs() {
    let _serial = smoke_scale();
    class_hierarchy::main().expect("class_hierarchy example must complete");
}

#[test]
fn temporal_db_core_path_runs() {
    let _serial = smoke_scale();
    temporal_db::main().expect("temporal_db example must complete");
}

#[test]
fn storage_tradeoffs_core_path_runs() {
    let _serial = smoke_scale();
    storage_tradeoffs::main().expect("storage_tradeoffs example must complete");
}

#[test]
fn server_quickstart_core_path_runs() {
    let _serial = smoke_scale();
    server_quickstart::main().expect("server_quickstart example must complete");
}

#[test]
fn slowlog_demo_core_path_runs() {
    let _serial = smoke_scale();
    slowlog_demo::main().expect("slowlog_demo example must complete");
}
