//! Workspace end-to-end test for the service layer: the full stack (wire
//! codec over a real socket, admission queue, worker pool, update batcher)
//! must return **bit-identical** answers to direct in-process calls against
//! identically built structures.
//!
//! One registry exposes every op the protocol knows: 1-d range (B-tree),
//! stabbing (cached segment tree and interval tree), 2-sided (static
//! two-level PST), 3-sided (static 3-sided PST), and a dynamic PST taking
//! interleaved inserts/deletes/queries. The reference side replays the
//! exact same seeded op sequence against its own store.

use std::sync::Arc;
use std::time::Duration;

use pc_btree::BTree;
use pc_intervaltree::ExternalIntervalTree;
use pc_pagestore::{Interval, PageStore, Point};
use pc_pst::{DynamicPst, ThreeSided, ThreeSidedPst, TwoLevelPst, TwoSided};
use pc_rng::Rng;
use pc_segtree::CachedSegmentTree;
use pc_serve::wire::{Body, Op};
use pc_serve::{
    BTreeTarget, Client, DynamicPstTarget, IntervalTreeTarget, PstTarget, Registry,
    SegTreeTarget, Server, ServerConfig, Service, ThreeSidedTarget,
};
use pc_workloads::{
    gen_intervals, gen_points, gen_range_1d, gen_stabbing, gen_three_sided, gen_two_sided,
    IntervalDist, PointDist,
};

const PAGE: usize = 512;
const SEED: u64 = 0xE2E_5E44E;

struct Data {
    points: Vec<Point>,
    intervals: Vec<Interval>,
    entries: Vec<(i64, u64)>,
}

fn data() -> Data {
    let points: Vec<Point> = gen_points(2_000, PointDist::Uniform, SEED)
        .iter()
        .map(|&(x, y, id)| Point { x, y, id })
        .collect();
    let intervals: Vec<Interval> =
        gen_intervals(600, IntervalDist::LongTail, SEED ^ 1)
            .iter()
            .map(|&(lo, hi, id)| Interval { lo, hi, id })
            .collect();
    let mut entries: Vec<(i64, u64)> = points.iter().map(|p| (p.x, p.id)).collect();
    entries.sort_unstable();
    entries.dedup_by_key(|e| e.0);
    Data { points, intervals, entries }
}

/// Builds one instance of every structure over a fresh store. Target wire
/// ids are the registration order: 0=btree, 1=segtree, 2=intervaltree,
/// 3=pst, 4=pst3, 5=dynamic pst.
fn build_service(d: &Data) -> Service {
    let store = Arc::new(PageStore::in_memory(PAGE));
    let mut registry = Registry::new();
    registry.register(
        "keys",
        Box::new(BTreeTarget(BTree::bulk_build(&store, &d.entries).unwrap())),
    );
    registry.register(
        "segtree",
        Box::new(SegTreeTarget(CachedSegmentTree::build(&store, &d.intervals).unwrap())),
    );
    registry.register(
        "intervaltree",
        Box::new(IntervalTreeTarget(ExternalIntervalTree::build(&store, &d.intervals).unwrap())),
    );
    registry.register(
        "pst",
        Box::new(PstTarget(TwoLevelPst::build(&store, &d.points).unwrap())),
    );
    registry.register(
        "pst3",
        Box::new(ThreeSidedTarget(ThreeSidedPst::build(&store, &d.points).unwrap())),
    );
    registry.register(
        "dyn",
        Box::new(DynamicPstTarget::new(DynamicPst::build(&store, &d.points).unwrap())),
    );
    Service { store, registry }
}

#[test]
fn socket_answers_are_bit_identical_to_in_process() {
    let d = data();

    // Reference side: raw structures over their own store, no service code.
    let ref_store = PageStore::in_memory(PAGE);
    let btree = BTree::bulk_build(&ref_store, &d.entries).unwrap();
    let segtree = CachedSegmentTree::build(&ref_store, &d.intervals).unwrap();
    let itree = ExternalIntervalTree::build(&ref_store, &d.intervals).unwrap();
    let pst = TwoLevelPst::build(&ref_store, &d.points).unwrap();
    let pst3 = ThreeSidedPst::build(&ref_store, &d.points).unwrap();
    let mut dynpst = DynamicPst::build(&ref_store, &d.points).unwrap();

    // Served side: the same builds behind the server.
    let handle = Server::spawn(build_service(&d), ServerConfig::default()).unwrap();
    let mut c = Client::connect(handle.addr(), Duration::from_secs(10)).unwrap();

    // 1-d ranges against the B-tree (target 0).
    let keys: Vec<i64> = d.entries.iter().map(|&(k, _)| k).collect();
    for q in gen_range_1d(&keys, 40, 32, SEED ^ 2) {
        let want = btree.range(&ref_store, &q.lo, &q.hi).unwrap();
        match c.call(0, 0, Op::Range1d { lo: q.lo, hi: q.hi }).unwrap().body {
            Body::Keys(got) => assert_eq!(got, want, "range {q:?} diverged"),
            other => panic!("unexpected body {other:?}"),
        }
    }

    // Stabbing against both interval structures (targets 1 and 2).
    for q in gen_stabbing(
        &d.intervals.iter().map(|iv| (iv.lo, iv.hi, iv.id)).collect::<Vec<_>>(),
        30,
        SEED ^ 3,
    ) {
        let want_seg = segtree.stab(&ref_store, q.q).unwrap();
        match c.call(1, 0, Op::Stab { q: q.q }).unwrap().body {
            Body::Intervals(got) => assert_eq!(got, want_seg, "segtree stab {q:?} diverged"),
            other => panic!("unexpected body {other:?}"),
        }
        let want_it = itree.stab(&ref_store, q.q).unwrap();
        match c.call(2, 0, Op::Stab { q: q.q }).unwrap().body {
            Body::Intervals(got) => assert_eq!(got, want_it, "itree stab {q:?} diverged"),
            other => panic!("unexpected body {other:?}"),
        }
    }

    // 2-sided against the static PST (target 3).
    let raw_pts: Vec<(i64, i64, u64)> = d.points.iter().map(|p| (p.x, p.y, p.id)).collect();
    for q in gen_two_sided(&raw_pts, 30, 64, SEED ^ 4) {
        let want = pst.query(&ref_store, TwoSided { x0: q.x0, y0: q.y0 }).unwrap();
        match c.call(3, 0, Op::TwoSided { x0: q.x0, y0: q.y0 }).unwrap().body {
            Body::Points(got) => assert_eq!(got, want, "2-sided {q:?} diverged"),
            other => panic!("unexpected body {other:?}"),
        }
    }

    // 3-sided against the static 3-sided PST (target 4).
    for q in gen_three_sided(&raw_pts, 30, 64, SEED ^ 5) {
        let want = pst3.query(&ref_store, ThreeSided { x1: q.x1, x2: q.x2, y0: q.y0 }).unwrap();
        match c.call(4, 0, Op::ThreeSided { x1: q.x1, x2: q.x2, y0: q.y0 }).unwrap().body {
            Body::Points(got) => assert_eq!(got, want, "3-sided {q:?} diverged"),
            other => panic!("unexpected body {other:?}"),
        }
    }

    // Interleaved updates + queries against the dynamic PST (target 5).
    // Closed-loop on one connection: an acked update precedes the next op
    // on both sides, so the sequences are order-identical.
    let mut rng = Rng::seed_from_u64(SEED ^ 6);
    let mut next_id = 1_000_000u64;
    for step in 0..120 {
        match rng.gen_range(0..4usize) {
            0 => {
                next_id += 1;
                let p = Point {
                    x: rng.gen_range(0..=pc_workloads::DOMAIN),
                    y: rng.gen_range(0..=pc_workloads::DOMAIN),
                    id: next_id,
                };
                dynpst.insert(&ref_store, p).unwrap();
                let resp = c.insert(5, p).unwrap();
                assert!(matches!(resp.body, Body::Ack { .. }), "step {step}: {resp:?}");
            }
            1 => {
                let p = d.points[rng.gen_range(0..d.points.len())];
                dynpst.delete(&ref_store, p).unwrap();
                let resp = c.delete(5, p).unwrap();
                assert!(matches!(resp.body, Body::Ack { .. }), "step {step}: {resp:?}");
            }
            _ => {
                let q = gen_two_sided(&raw_pts, 1, 48, SEED ^ (7 + step))[0];
                let want = dynpst.query(&ref_store, TwoSided { x0: q.x0, y0: q.y0 }).unwrap();
                match c.call(5, 0, Op::TwoSided { x0: q.x0, y0: q.y0 }).unwrap().body {
                    Body::Points(got) => {
                        assert_eq!(got, want, "step {step}: dynamic 2-sided {q:?} diverged")
                    }
                    other => panic!("unexpected body {other:?}"),
                }
            }
        }
    }

    // The server's store did real paging I/O to produce those answers.
    assert!(handle.io_stats().reads > 0);
    let mut admin = Client::connect(handle.addr(), Duration::from_secs(10)).unwrap();
    admin.shutdown_server().unwrap();
    handle.join();
}
