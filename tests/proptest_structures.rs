//! Property-based differential tests: every external structure against an
//! exhaustive in-memory oracle, on proptest-generated inputs.

use std::collections::BTreeMap;

use proptest::prelude::*;

use path_caching::intervaltree::ExternalIntervalTree;
use path_caching::segtree::{CachedSegmentTree, NaiveSegmentTree};
use path_caching::{Interval, PageStore, Point, ThreeSided, TwoSided};
use pc_btree::BTree;
use pc_pst::{SegmentedPst, ThreeSidedPst, TwoLevelPst};

fn point_strategy(domain: i64) -> impl Strategy<Value = (i64, i64)> {
    (0..domain, 0..domain)
}

fn interval_strategy(domain: i64) -> impl Strategy<Value = (i64, i64)> {
    (0..domain, 0..domain).prop_map(|(a, b)| if a <= b { (a, b) } else { (b, a) })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// B+-tree behaves exactly like BTreeMap under arbitrary op sequences.
    #[test]
    fn btree_matches_btreemap(ops in prop::collection::vec((0u8..3, -50i64..50, 0u64..1000), 1..400)) {
        let store = PageStore::in_memory(256);
        let mut tree: BTree<i64, u64> = BTree::new(&store).unwrap();
        let mut oracle: BTreeMap<i64, u64> = BTreeMap::new();
        for (op, k, v) in ops {
            match op {
                0 => prop_assert_eq!(tree.insert(&store, k, v).unwrap(), oracle.insert(k, v)),
                1 => prop_assert_eq!(tree.delete(&store, &k).unwrap(), oracle.remove(&k)),
                _ => prop_assert_eq!(tree.get(&store, &k).unwrap(), oracle.get(&k).copied()),
            }
            prop_assert_eq!(tree.len(), oracle.len() as u64);
        }
        let got = tree.scan_all(&store).unwrap();
        let want: Vec<(i64, u64)> = oracle.into_iter().collect();
        prop_assert_eq!(got, want);
    }

    /// B+-tree range queries agree with the oracle.
    #[test]
    fn btree_ranges_match(
        keys in prop::collection::btree_set(-200i64..200, 1..150),
        lo in -250i64..250,
        width in 0i64..200,
    ) {
        let store = PageStore::in_memory(256);
        let entries: Vec<(i64, u64)> = keys.iter().map(|&k| (k, k.unsigned_abs())).collect();
        let tree = BTree::bulk_build(&store, &entries).unwrap();
        let hi = lo + width;
        let got = tree.range(&store, &lo, &hi).unwrap();
        let want: Vec<(i64, u64)> =
            entries.iter().filter(|(k, _)| lo <= *k && *k <= hi).copied().collect();
        prop_assert_eq!(got, want);
    }

    /// Both segment-tree variants and the interval tree answer stabbing
    /// queries exactly.
    #[test]
    fn stabbing_structures_match_oracle(
        raw in prop::collection::vec(interval_strategy(500), 1..120),
        queries in prop::collection::vec(-20i64..520, 1..25),
    ) {
        let intervals: Vec<Interval> = raw
            .iter()
            .enumerate()
            .map(|(i, &(lo, hi))| Interval::new(lo, hi, i as u64))
            .collect();
        let store = PageStore::in_memory(512);
        let naive = NaiveSegmentTree::build(&store, &intervals).unwrap();
        let cached = CachedSegmentTree::build(&store, &intervals).unwrap();
        let itree = ExternalIntervalTree::build(&store, &intervals).unwrap();
        for q in queries {
            let mut want: Vec<u64> =
                intervals.iter().filter(|iv| iv.contains(q)).map(|iv| iv.id).collect();
            want.sort_unstable();
            for (name, mut got) in [
                ("naive-segtree", naive.stab(&store, q).unwrap()),
                ("cached-segtree", cached.stab(&store, q).unwrap()),
                ("interval-tree", itree.stab(&store, q).unwrap()),
            ] {
                got.sort_unstable_by_key(|iv| iv.id);
                let got_ids: Vec<u64> = got.iter().map(|iv| iv.id).collect();
                prop_assert_eq!(&got_ids, &want, "{} at q={}", name, q);
            }
        }
    }

    /// The PST variants answer 2-sided queries exactly, duplicates and all.
    #[test]
    fn pst_two_sided_matches_oracle(
        raw in prop::collection::vec(point_strategy(300), 1..250),
        queries in prop::collection::vec((-20i64..320, -20i64..320), 1..20),
    ) {
        let points: Vec<Point> = raw
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Point::new(x, y, i as u64))
            .collect();
        let store = PageStore::in_memory(512);
        let seg = SegmentedPst::build(&store, &points).unwrap();
        let two = TwoLevelPst::build(&store, &points).unwrap();
        for (x0, y0) in queries {
            let q = TwoSided { x0, y0 };
            let mut want: Vec<u64> =
                points.iter().filter(|p| q.contains(p)).map(|p| p.id).collect();
            want.sort_unstable();
            for (name, res) in [
                ("segmented", seg.query(&store, q).unwrap()),
                ("two-level", two.query(&store, q).unwrap()),
            ] {
                prop_assert_eq!(res.len(), want.len(), "{} dups at {:?}", name, q);
                let mut ids: Vec<u64> = res.iter().map(|p| p.id).collect();
                ids.sort_unstable();
                prop_assert_eq!(&ids, &want, "{} at {:?}", name, q);
            }
        }
    }

    /// The 3-sided PST answers band queries exactly.
    #[test]
    fn pst_three_sided_matches_oracle(
        raw in prop::collection::vec(point_strategy(300), 1..250),
        queries in prop::collection::vec((-20i64..320, 0i64..150, -20i64..320), 1..20),
    ) {
        let points: Vec<Point> = raw
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Point::new(x, y, i as u64))
            .collect();
        let store = PageStore::in_memory(512);
        let pst = ThreeSidedPst::build(&store, &points).unwrap();
        for (x1, width, y0) in queries {
            let q = ThreeSided { x1, x2: x1 + width, y0 };
            let mut want: Vec<u64> =
                points.iter().filter(|p| q.contains(p)).map(|p| p.id).collect();
            want.sort_unstable();
            let res = pst.query(&store, q).unwrap();
            prop_assert_eq!(res.len(), want.len(), "dups at {:?}", q);
            let mut ids: Vec<u64> = res.iter().map(|p| p.id).collect();
            ids.sort_unstable();
            prop_assert_eq!(ids, want, "{:?}", q);
        }
    }

    /// The blocked list preserves arbitrary record sequences.
    #[test]
    fn block_list_roundtrip(points in prop::collection::vec(point_strategy(1000), 0..300)) {
        use pc_pagestore::layout::BlockList;
        let store = PageStore::in_memory(256);
        let records: Vec<Point> =
            points.iter().enumerate().map(|(i, &(x, y))| Point::new(x, y, i as u64)).collect();
        let list = BlockList::build(&store, &records).unwrap();
        prop_assert_eq!(list.read_all(&store).unwrap(), records);
    }
}
