//! Chaos tests for the service layer: a server whose page store runs under
//! seeded fault injection must keep the wire contract — every request gets
//! a response (correct answer or a typed error), never a hung connection
//! and never a silently wrong result — and the store's resilience counters
//! must be visible over the ADMIN stats op.
//!
//! Seeds follow the `tests/chaos.rs` convention: fixed by default,
//! `PC_CHAOS_SEED=<u64>` to explore fresh scenarios.

use std::sync::Arc;
use std::time::Duration;

use pc_pagestore::backend::MemBackend;
use pc_pagestore::{FaultBackend, FaultPlan, PageStore, Point, RetryPolicy, StoreConfig};
use pc_pst::DynamicPst;
use pc_rng::Rng;
use pc_serve::wire::{Body, ErrorCode, Op};
use pc_serve::{Client, DynamicPstTarget, Registry, Server, ServerConfig, ServerHandle, Service};

const PAGE: usize = 512;

fn chaos_seed() -> u64 {
    match std::env::var("PC_CHAOS_SEED") {
        Ok(s) => s
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("PC_CHAOS_SEED must parse as u64, got {s:?}")),
        Err(_) => 0x00C0_FFEE,
    }
}

fn gen_points(rng: &mut Rng, n: usize) -> Vec<Point> {
    (0..n)
        .map(|i| Point { x: rng.gen_range(0i64..400), y: rng.gen_range(0i64..400), id: i as u64 })
        .collect()
}

/// Spawns a one-target (dynamic PST) server over the given store.
fn spawn_over(store: PageStore, seed: u64) -> ServerHandle {
    let store = Arc::new(store);
    let mut rng = Rng::seed_from_u64(seed);
    let points = gen_points(&mut rng, 250);
    let pst = DynamicPst::build(&store, &points)
        .unwrap_or_else(|e| panic!("build under faults failed (seed={seed}): {e}"));
    let mut registry = Registry::new();
    registry.register("dyn", Box::new(DynamicPstTarget::new(pst)));
    Server::spawn(Service { store, registry }, ServerConfig { workers: 2, ..Default::default() })
        .unwrap()
}

/// The seeded client workload: interleaved queries, inserts, and deletes.
/// Returns one canonical line per response.
fn drive(c: &mut Client, seed: u64) -> Vec<String> {
    let mut rng = Rng::seed_from_u64(seed ^ 0xd21e);
    let mut log = Vec::new();
    let mut next_id = 10_000u64;
    for _ in 0..80 {
        let op = match rng.gen_range(0..4usize) {
            0 => {
                next_id += 1;
                Op::Insert(Point {
                    x: rng.gen_range(0i64..400),
                    y: rng.gen_range(0i64..400),
                    id: next_id,
                })
            }
            1 => Op::Delete(Point {
                x: rng.gen_range(0i64..400),
                y: rng.gen_range(0i64..400),
                id: rng.gen_range(0..250u64),
            }),
            _ => Op::TwoSided {
                x0: rng.gen_range(-20i64..420),
                y0: rng.gen_range(-20i64..420),
            },
        };
        let resp = c.call(0, 0, op).unwrap();
        match resp.body {
            Body::Points(mut ps) => {
                ps.sort_unstable_by_key(|p| p.id);
                log.push(format!("points {:?}", ps.iter().map(|p| p.id).collect::<Vec<_>>()));
            }
            Body::Ack { .. } => log.push("ack".to_string()),
            other => log.push(format!("{other:?}")),
        }
    }
    log
}

fn admin_stat(c: &mut Client, name: &str) -> u64 {
    match c.stats().unwrap().body {
        Body::Stats(pairs) => pairs
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
            .unwrap_or_else(|| panic!("stat {name} missing")),
        other => panic!("unexpected body {other:?}"),
    }
}

/// Transient faults absorbed by retries are invisible over the wire: the
/// response log matches a fault-free server bit-for-bit, and the retries
/// show up in the ADMIN stats.
#[test]
fn transient_store_faults_are_invisible_over_the_wire() {
    let seed = chaos_seed();

    let clean = spawn_over(PageStore::in_memory(PAGE), seed);
    let mut c = Client::connect(clean.addr(), Duration::from_secs(10)).unwrap();
    let want = drive(&mut c, seed);
    clean.shutdown();
    clean.join();

    // Same plan as tests/chaos.rs: p=0.02 per access, 10-attempt budget.
    let retry = RetryPolicy { max_attempts: 10, backoff: None };
    let backend = FaultBackend::new(Box::new(MemBackend::new(PAGE + 8)), FaultPlan::transient(seed, 0.02));
    let store = PageStore::new(StoreConfig::strict(PAGE).with_retry(retry), Box::new(backend));
    let faulty = spawn_over(store, seed);
    let mut c = Client::connect(faulty.addr(), Duration::from_secs(10)).unwrap();
    let got = drive(&mut c, seed);
    assert_eq!(got, want, "responses diverged under transient faults (seed={seed})");

    // Resilience counters are visible over ADMIN stats.
    let retries = admin_stat(&mut c, "io_retries");
    assert!(retries > 0, "the transient plan never fired (seed={seed})");
    for key in ["io_reads", "io_failovers", "io_repairs", "io_quarantined"] {
        admin_stat(&mut c, key); // presence check
    }
    faulty.shutdown();
    faulty.join();
}

/// Silent page corruption surfaces as a typed `Storage` error response —
/// never a hung connection, never a silently different answer. The
/// connection stays usable afterwards.
#[test]
fn corruption_is_a_typed_error_response_never_a_hang() {
    let seed = chaos_seed();
    let store = PageStore::in_memory(PAGE);
    let handle = {
        let store_arc = Arc::new(store);
        let mut rng = Rng::seed_from_u64(seed);
        let points = gen_points(&mut rng, 250);
        let pst = DynamicPst::build(&store_arc, &points).unwrap();
        let mut registry = Registry::new();
        registry.register("dyn", Box::new(DynamicPstTarget::new(pst)));
        Server::spawn(
            Service { store: Arc::clone(&store_arc), registry },
            ServerConfig { workers: 2, ..Default::default() },
        )
        .unwrap()
    };

    // The client enforces its own read timeout: a hang would fail the test
    // with an Io error rather than wedging it.
    let mut c = Client::connect(handle.addr(), Duration::from_secs(5)).unwrap();
    let mut rng = Rng::seed_from_u64(seed ^ 0xc0de);
    let queries: Vec<Op> = (0..8)
        .map(|_| Op::TwoSided { x0: rng.gen_range(-20i64..420), y0: rng.gen_range(-20i64..420) })
        .collect();
    let golden: Vec<Body> =
        queries.iter().map(|op| c.call(0, 0, op.clone()).unwrap().body).collect();

    // Walk the allocated pages: corrupt one at a time (XOR — a second
    // injection restores the frame) and replay the query set.
    let store = Arc::clone(handle.store());
    let mut detections = 0u64;
    for id in store.allocated_pages() {
        store.inject_corruption(id, 1).unwrap();
        for (i, op) in queries.iter().enumerate() {
            let resp = c.call(0, 0, op.clone()).unwrap_or_else(|e| {
                panic!("wire call failed with page {id:?} corrupt (seed={seed}): {e}")
            });
            match resp.body {
                Body::Error { code: ErrorCode::Storage, message } => {
                    assert!(!message.is_empty());
                    detections += 1;
                }
                body => assert_eq!(
                    body, golden[i],
                    "silent wrong answer with page {id:?} corrupt (seed={seed})"
                ),
            }
        }
        store.inject_corruption(id, 1).unwrap();
    }
    assert!(detections > 0, "no corruption was ever read back (seed={seed})");
    assert_eq!(
        admin_stat(&mut c, "pc_serve_storage_errors_total"),
        detections,
        "every detection must be counted (seed={seed})"
    );

    // After the walk everything is healed: answers match golden again.
    for (i, op) in queries.iter().enumerate() {
        assert_eq!(c.call(0, 0, op.clone()).unwrap().body, golden[i]);
    }
    handle.shutdown();
    handle.join();
}
