//! Chaos harness: every index structure in the workspace, run under seeded
//! fault injection, must return the correct answer or a clean `Err` — never
//! panic, never be silently wrong.
//!
//! Each scenario is a deterministic workload (build + mutate + query) whose
//! per-operation outputs are logged as canonical strings. The fault-free
//! log is the golden reference; fault runs are diffed against it:
//!
//! - **transient-only faults + retries**: invisible — the full log matches
//!   the golden one bit-for-bit, and so do the transfer counts (retries are
//!   not transfers).
//! - **2-way mirror under phased silent corruption**: invisible — the two
//!   replicas share a seed but sit half a phase apart, so no frame is ever
//!   torn on both at once and read-failover always finds a good copy.
//! - **single backend under full chaos**: every completed operation matches
//!   the golden prefix; the first failure (if any) is a clean `Err`.
//!
//! Seeds are fixed by default; set `PC_CHAOS_SEED=<u64>` to explore fresh
//! scenarios (`scripts/verify.sh --chaos` does both). Every assertion
//! message carries the seed so a failure is reproducible verbatim.

use std::panic::{catch_unwind, AssertUnwindSafe};

use pc_btree::BTree;
use pc_pagestore::backend::MemBackend;
use pc_pagestore::{
    FaultBackend, FaultHandle, FaultPlan, MirrorBackend, PageStore, RetryPolicy, StoreConfig,
    StoreError,
};
use pc_pst::{DynamicPst, DynamicThreeSidedPst, SegmentedPst, ThreeSidedPst, TwoLevelPst};
use pc_rng::Rng;

use path_caching::intervaltree::ExternalIntervalTree;
use path_caching::segtree::{CachedSegmentTree, NaiveSegmentTree};
use path_caching::{Interval, Point, ThreeSided, TwoSided};

const PAGE: usize = 512;

fn chaos_seed() -> u64 {
    match std::env::var("PC_CHAOS_SEED") {
        Ok(s) => s
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("PC_CHAOS_SEED must parse as u64, got {s:?}")),
        Err(_) => 0x00C0_FFEE,
    }
}

/// One structure's deterministic workload. Appends a canonical line per
/// completed operation; the first storage error aborts the run. The
/// workload's randomness comes from `seed` alone, never from the store, so
/// the op sequence is identical with and without faults.
type Scenario = fn(&PageStore, u64, &mut Vec<String>) -> Result<(), StoreError>;

const SCENARIOS: &[(&str, Scenario)] = &[
    ("btree", btree_scenario),
    ("naive-segtree", naive_segtree_scenario),
    ("cached-segtree", cached_segtree_scenario),
    ("interval-tree", interval_tree_scenario),
    ("segmented-pst", segmented_pst_scenario),
    ("two-level-pst", two_level_pst_scenario),
    ("three-sided-pst", three_sided_pst_scenario),
    ("dynamic-pst", dynamic_pst_scenario),
    ("dynamic-3s-pst", dynamic_three_sided_pst_scenario),
];

fn fmt_ids(mut ids: Vec<u64>) -> String {
    ids.sort_unstable();
    format!("{ids:?}")
}

fn gen_points(rng: &mut Rng, n: usize) -> Vec<Point> {
    (0..n)
        .map(|i| Point::new(rng.gen_range(0i64..400), rng.gen_range(0i64..400), i as u64))
        .collect()
}

fn gen_intervals(rng: &mut Rng, n: usize) -> Vec<Interval> {
    (0..n)
        .map(|i| {
            let lo = rng.gen_range(0i64..400);
            Interval::new(lo, lo + rng.gen_range(0i64..120), i as u64)
        })
        .collect()
}

fn btree_scenario(store: &PageStore, seed: u64, log: &mut Vec<String>) -> Result<(), StoreError> {
    let mut rng = Rng::seed_from_u64(seed ^ 0xb7ee);
    let mut entries: Vec<(i64, u64)> =
        (0..200).map(|_| rng.gen_range(-500i64..500)).map(|k| (k, k.unsigned_abs())).collect();
    entries.sort_unstable();
    entries.dedup_by_key(|e| e.0);
    let mut tree = BTree::bulk_build(store, &entries)?;
    for _ in 0..40 {
        let k = rng.gen_range(-600i64..600);
        let prev = tree.insert(store, k, k.unsigned_abs().wrapping_mul(3))?;
        log.push(format!("insert {k}: prev={prev:?} len={}", tree.len()));
    }
    for _ in 0..10 {
        let k = rng.gen_range(-600i64..600);
        log.push(format!("delete {k}: {:?}", tree.delete(store, &k)?));
    }
    for _ in 0..12 {
        let lo = rng.gen_range(-650i64..650);
        let hi = lo + rng.gen_range(0i64..300);
        log.push(format!("range {lo}..={hi}: {:?}", tree.range(store, &lo, &hi)?));
    }
    Ok(())
}

fn naive_segtree_scenario(
    store: &PageStore,
    seed: u64,
    log: &mut Vec<String>,
) -> Result<(), StoreError> {
    let mut rng = Rng::seed_from_u64(seed ^ 0x5e67);
    let intervals = gen_intervals(&mut rng, 150);
    let tree = NaiveSegmentTree::build(store, &intervals)?;
    for _ in 0..15 {
        let q = rng.gen_range(-20i64..540);
        let got = tree.stab(store, q)?;
        log.push(format!("stab {q}: {}", fmt_ids(got.iter().map(|iv| iv.id).collect())));
    }
    Ok(())
}

fn cached_segtree_scenario(
    store: &PageStore,
    seed: u64,
    log: &mut Vec<String>,
) -> Result<(), StoreError> {
    let mut rng = Rng::seed_from_u64(seed ^ 0xcac4);
    let intervals = gen_intervals(&mut rng, 150);
    let tree = CachedSegmentTree::build(store, &intervals)?;
    for _ in 0..15 {
        let q = rng.gen_range(-20i64..540);
        let got = tree.stab(store, q)?;
        log.push(format!("stab {q}: {}", fmt_ids(got.iter().map(|iv| iv.id).collect())));
    }
    Ok(())
}

fn interval_tree_scenario(
    store: &PageStore,
    seed: u64,
    log: &mut Vec<String>,
) -> Result<(), StoreError> {
    let mut rng = Rng::seed_from_u64(seed ^ 0x17ee);
    let intervals = gen_intervals(&mut rng, 150);
    let tree = ExternalIntervalTree::build(store, &intervals)?;
    for _ in 0..15 {
        let q = rng.gen_range(-20i64..540);
        let got = tree.stab(store, q)?;
        log.push(format!("stab {q}: {}", fmt_ids(got.iter().map(|iv| iv.id).collect())));
    }
    Ok(())
}

fn segmented_pst_scenario(
    store: &PageStore,
    seed: u64,
    log: &mut Vec<String>,
) -> Result<(), StoreError> {
    let mut rng = Rng::seed_from_u64(seed ^ 0x5e91);
    let points = gen_points(&mut rng, 250);
    let pst = SegmentedPst::build(store, &points)?;
    for _ in 0..15 {
        let q = TwoSided { x0: rng.gen_range(-20i64..420), y0: rng.gen_range(-20i64..420) };
        let got = pst.query(store, q)?;
        log.push(format!("{q:?}: {}", fmt_ids(got.iter().map(|p| p.id).collect())));
    }
    Ok(())
}

fn two_level_pst_scenario(
    store: &PageStore,
    seed: u64,
    log: &mut Vec<String>,
) -> Result<(), StoreError> {
    let mut rng = Rng::seed_from_u64(seed ^ 0x2011);
    let points = gen_points(&mut rng, 250);
    let pst = TwoLevelPst::build(store, &points)?;
    for _ in 0..15 {
        let q = TwoSided { x0: rng.gen_range(-20i64..420), y0: rng.gen_range(-20i64..420) };
        let got = pst.query(store, q)?;
        log.push(format!("{q:?}: {}", fmt_ids(got.iter().map(|p| p.id).collect())));
    }
    Ok(())
}

fn three_sided_pst_scenario(
    store: &PageStore,
    seed: u64,
    log: &mut Vec<String>,
) -> Result<(), StoreError> {
    let mut rng = Rng::seed_from_u64(seed ^ 0x3510);
    let points = gen_points(&mut rng, 250);
    let pst = ThreeSidedPst::build(store, &points)?;
    for _ in 0..15 {
        let x1 = rng.gen_range(-20i64..420);
        let q = ThreeSided { x1, x2: x1 + rng.gen_range(0i64..200), y0: rng.gen_range(-20i64..420) };
        let got = pst.query(store, q)?;
        log.push(format!("{q:?}: {}", fmt_ids(got.iter().map(|p| p.id).collect())));
    }
    Ok(())
}

fn dynamic_pst_scenario(
    store: &PageStore,
    seed: u64,
    log: &mut Vec<String>,
) -> Result<(), StoreError> {
    let mut rng = Rng::seed_from_u64(seed ^ 0xd1_2d);
    let points = gen_points(&mut rng, 200);
    let (base, rest) = points.split_at(120);
    let mut pst = DynamicPst::build(store, base)?;
    for &p in rest {
        pst.insert(store, p)?;
    }
    for p in points.iter().step_by(5) {
        pst.delete(store, *p)?;
    }
    log.push(format!("len={}", pst.len()));
    for _ in 0..12 {
        let q = TwoSided { x0: rng.gen_range(-20i64..420), y0: rng.gen_range(-20i64..420) };
        let got = pst.query(store, q)?;
        log.push(format!("{q:?}: {}", fmt_ids(got.iter().map(|p| p.id).collect())));
    }
    Ok(())
}

fn dynamic_three_sided_pst_scenario(
    store: &PageStore,
    seed: u64,
    log: &mut Vec<String>,
) -> Result<(), StoreError> {
    let mut rng = Rng::seed_from_u64(seed ^ 0xd3_5d);
    let points = gen_points(&mut rng, 200);
    let (base, rest) = points.split_at(120);
    let mut pst = DynamicThreeSidedPst::build(store, base)?;
    for &p in rest {
        pst.insert(store, p)?;
    }
    for p in points.iter().step_by(7) {
        pst.delete(store, *p)?;
    }
    for _ in 0..12 {
        let x1 = rng.gen_range(-20i64..420);
        let q = ThreeSided { x1, x2: x1 + rng.gen_range(0i64..200), y0: rng.gen_range(-20i64..420) };
        let got = pst.query(store, q)?;
        log.push(format!("{q:?}: {}", fmt_ids(got.iter().map(|p| p.id).collect())));
    }
    Ok(())
}

/// Runs a scenario, converting any panic into a test failure that names the
/// scenario and seed. Returns the (possibly partial) log and the outcome.
fn run_guarded(
    name: &str,
    f: Scenario,
    store: &PageStore,
    seed: u64,
) -> (Vec<String>, Result<(), StoreError>) {
    let mut log = Vec::new();
    let outcome = catch_unwind(AssertUnwindSafe(|| f(store, seed, &mut log)));
    match outcome {
        Ok(r) => (log, r),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic payload>".into());
            panic!("scenario {name} PANICKED under faults (seed={seed}): {msg}");
        }
    }
}

/// Fault-free golden run; must succeed by construction.
fn golden(name: &str, f: Scenario, seed: u64) -> (Vec<String>, pc_pagestore::IoStats) {
    let store = PageStore::in_memory(PAGE);
    let mut log = Vec::new();
    f(&store, seed, &mut log)
        .unwrap_or_else(|e| panic!("scenario {name}: fault-free run failed (seed={seed}): {e}"));
    (log, store.stats())
}

fn strict_faulty(plan: FaultPlan, retry: RetryPolicy) -> (PageStore, FaultHandle) {
    let backend = FaultBackend::new(Box::new(MemBackend::new(PAGE + 8)), plan);
    let handle = backend.handle();
    (PageStore::new(StoreConfig::strict(PAGE).with_retry(retry), Box::new(backend)), handle)
}

#[test]
fn fault_free_runs_are_deterministic() {
    let seed = chaos_seed();
    for &(name, f) in SCENARIOS {
        let (a, _) = golden(name, f, seed);
        let (b, _) = golden(name, f, seed);
        assert_eq!(a, b, "scenario {name} is nondeterministic (seed={seed})");
        assert!(!a.is_empty(), "scenario {name} logged nothing (seed={seed})");
    }
}

/// Transient faults + bounded retries are invisible: identical answers,
/// identical transfer counts (retries are accounted separately).
#[test]
fn transient_faults_are_fully_absorbed_by_retries() {
    let seed = chaos_seed();
    // p = 0.02 per access with a 10-attempt budget: the chance of ever
    // exhausting it is ~1e-17 per access — negligible for any seed.
    let retry = RetryPolicy { max_attempts: 10, backoff: None };
    let mut total_retries = 0;
    for &(name, f) in SCENARIOS {
        let (want, clean_stats) = golden(name, f, seed);
        let (store, handle) = strict_faulty(FaultPlan::transient(seed, 0.02), retry);
        let (got, outcome) = run_guarded(name, f, &store, seed);
        if let Err(e) = outcome {
            panic!("scenario {name}: retries failed to absorb a transient (seed={seed}): {e}");
        }
        assert_eq!(got, want, "scenario {name} diverged under transients (seed={seed})");
        let s = store.stats();
        assert_eq!(
            (s.reads, s.writes),
            (clean_stats.reads, clean_stats.writes),
            "scenario {name}: retries must not change transfer counts (seed={seed})"
        );
        assert_eq!(s.retries, handle.injected().total(), "every injected fault cost one retry");
        total_retries += s.retries;
    }
    assert!(total_retries > 0, "the transient plan never fired — chaos was a no-op (seed={seed})");
}

/// A 2-way mirror whose replicas share a seed but sit half a phase apart:
/// torn writes land on at most one replica per operation, so failover and
/// read-repair reconstruct the fault-free answers bit-for-bit.
#[test]
fn mirrored_chaos_is_bit_identical_to_fault_free() {
    let seed = chaos_seed();
    // One silent-corruption kind only: phase disjointness holds per fault
    // kind (same salt), so mixing torn + rot across replicas could corrupt
    // both copies of a frame in one operation. Torn-only keeps "the mirror
    // always has a good copy" a certainty instead of a likelihood.
    let plan_a = FaultPlan {
        read_transient_p: 0.01,
        write_transient_p: 0.01,
        torn_write_p: 0.04,
        ..FaultPlan::none(seed)
    };
    let plan_b = plan_a.with_phase(0.5);
    let retry = RetryPolicy { max_attempts: 6, backoff: None };
    let (mut injected, mut failovers, mut repairs) = (0, 0, 0);
    for &(name, f) in SCENARIOS {
        let (want, _) = golden(name, f, seed);
        let ra = FaultBackend::new(Box::new(MemBackend::new(PAGE + 8)), plan_a);
        let rb = FaultBackend::new(Box::new(MemBackend::new(PAGE + 8)), plan_b);
        let (ha, hb) = (ra.handle(), rb.handle());
        let mirror = MirrorBackend::new(vec![Box::new(ra), Box::new(rb)]);
        let store =
            PageStore::new(StoreConfig::strict(PAGE).with_retry(retry), Box::new(mirror));
        let (got, outcome) = run_guarded(name, f, &store, seed);
        if let Err(e) = outcome {
            panic!("scenario {name}: mirrored run failed cleanly but failed (seed={seed}): {e}");
        }
        assert_eq!(got, want, "scenario {name}: mirror leaked corruption (seed={seed})");
        injected += ha.injected().total() + hb.injected().total();
        let s = store.stats();
        failovers += s.failovers;
        repairs += s.repairs;
        // A final scrub leaves both replicas in agreement and repairs
        // whatever torn frames were never read back.
        let report = store.scrub().unwrap_or_else(|e| {
            panic!("scenario {name}: scrub failed (seed={seed}): {e}")
        });
        assert_eq!(
            report.unrecoverable, 0,
            "scenario {name}: scrub found an unrecoverable frame (seed={seed})"
        );
    }
    assert!(injected > 0, "the chaos plans never fired (seed={seed})");
    assert!(failovers > 0, "no read ever failed over — mirror was never exercised (seed={seed})");
    assert!(repairs > 0, "no replica was ever repaired (seed={seed})");
}

/// A single backend under full chaos (torn writes + bit rot + transients):
/// silent corruption may surface, but only ever as a clean checksum error —
/// every operation that completes matches the golden log, and nothing
/// panics.
#[test]
fn single_backend_chaos_never_panics_or_lies() {
    let base = chaos_seed();
    let mut injected = 0;
    let mut clean_errors = 0;
    for sub in 0..4u64 {
        let seed = base.wrapping_add(sub.wrapping_mul(0x9e37_79b9));
        let plan = FaultPlan {
            read_transient_p: 0.01,
            write_transient_p: 0.01,
            torn_write_p: 0.01,
            bit_rot_p: 0.01,
            ..FaultPlan::none(seed)
        };
        for &(name, f) in SCENARIOS {
            let (want, _) = golden(name, f, seed);
            let (store, handle) = strict_faulty(plan, RetryPolicy::default());
            let (got, outcome) = run_guarded(name, f, &store, seed);
            match outcome {
                // A fully clean run must match the golden log exactly.
                Ok(()) => assert_eq!(
                    got, want,
                    "scenario {name}: silent wrong answer under chaos (seed={seed})"
                ),
                // An aborted run must have been correct up to the failure.
                Err(e) => {
                    clean_errors += 1;
                    assert!(
                        got.len() <= want.len() && got[..] == want[..got.len()],
                        "scenario {name}: diverged before erroring with {e} (seed={seed})"
                    );
                }
            }
            injected += handle.injected().total();
        }
    }
    assert!(injected > 0, "chaos plans never fired (seed={base})");
    // With 1% silent corruption across 4 sub-seeds it is (deterministically,
    // for the default seed; overwhelmingly, for any other) certain that at
    // least one scenario hit a checksum failure.
    assert!(clean_errors > 0, "no run ever observed a fault surfacing (seed={base})");
}

/// The corruption walk: corrupt every live page in turn. On a single
/// backend each walk step either leaves the answers untouched (the page was
/// not read) or surfaces `ChecksumMismatch` for exactly that page; on a
/// 2-way mirror the answers never change at all.
#[test]
fn corruption_walk_is_detected_bare_and_masked_mirrored() {
    let seed = chaos_seed();
    let mut rng = Rng::seed_from_u64(seed ^ 0x3a1c);
    let points = gen_points(&mut rng, 250);
    let queries: Vec<TwoSided> = (0..10)
        .map(|_| TwoSided { x0: rng.gen_range(-20i64..420), y0: rng.gen_range(-20i64..420) })
        .collect();

    // Bare backend: corruption must be *detected* — never a panic, never a
    // silently different answer.
    let store = PageStore::in_memory(PAGE);
    let pst = TwoLevelPst::build(&store, &points).unwrap();
    let answer = |store: &PageStore, q: TwoSided| {
        pst.query(store, q).map(|got| fmt_ids(got.iter().map(|p| p.id).collect()))
    };
    let golden: Vec<String> =
        queries.iter().map(|&q| answer(&store, q).unwrap()).collect();
    let mut detections = 0u64;
    for id in store.allocated_pages() {
        store.inject_corruption(id, 1).unwrap();
        for (i, &q) in queries.iter().enumerate() {
            let res = catch_unwind(AssertUnwindSafe(|| answer(&store, q))).unwrap_or_else(|_| {
                panic!("query PANICKED with page {id:?} corrupt (seed={seed})")
            });
            match res {
                Ok(got) => assert_eq!(
                    got, golden[i],
                    "silent wrong answer with page {id:?} corrupt (seed={seed})"
                ),
                Err(StoreError::ChecksumMismatch(p)) => {
                    assert_eq!(p, id, "mismatch reported for the wrong page (seed={seed})");
                    detections += 1;
                }
                Err(e) => {
                    panic!("unexpected error with page {id:?} corrupt (seed={seed}): {e}")
                }
            }
        }
        store.inject_corruption(id, 1).unwrap(); // XOR: restores the frame
    }
    for (i, &q) in queries.iter().enumerate() {
        assert_eq!(answer(&store, q).unwrap(), golden[i], "restore failed (seed={seed})");
    }
    assert!(detections > 0, "no corruption was ever read back — walk was a no-op (seed={seed})");

    // Mirrored: the same walk (single-replica rot) must be fully *masked*.
    let ra = FaultBackend::new(Box::new(MemBackend::new(PAGE + 8)), FaultPlan::none(1));
    let rb = FaultBackend::new(Box::new(MemBackend::new(PAGE + 8)), FaultPlan::none(2));
    let ha = ra.handle();
    let mirror = MirrorBackend::new(vec![Box::new(ra), Box::new(rb)]);
    let store = PageStore::new(
        StoreConfig::strict(PAGE).with_retry(RetryPolicy::default()),
        Box::new(mirror),
    );
    let pst = TwoLevelPst::build(&store, &points).unwrap();
    let answer = |q: TwoSided| {
        pst.query(&store, q).map(|got| fmt_ids(got.iter().map(|p| p.id).collect()))
    };
    let golden: Vec<String> = queries.iter().map(|&q| answer(q).unwrap()).collect();
    store.reset_stats();
    for id in store.allocated_pages() {
        ha.rot_page(id);
        for (i, &q) in queries.iter().enumerate() {
            let got = answer(q).unwrap_or_else(|e| {
                panic!("mirror failed to mask rot on page {id:?} (seed={seed}): {e}")
            });
            assert_eq!(got, golden[i], "mirror changed an answer (page {id:?}, seed={seed})");
        }
        ha.heal_page(id);
    }
    let s = store.stats();
    assert!(s.failovers > 0, "no query ever read a rotten page — walk was a no-op (seed={seed})");
    assert!(s.repairs > 0, "read-repair never fired (seed={seed})");
}
