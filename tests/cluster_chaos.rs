//! Whole-node chaos over the shard fabric: kill one replica of a live
//! cluster mid-workload — including mid-update-batch — and prove that
//!
//! 1. every **acknowledged** update survives: after the killed node is
//!    restarted from its WAL and re-admitted through journal replay, the
//!    router *and every individual replica* answer bit-identically to an
//!    in-memory reference that only ever applied acked updates;
//! 2. queries during the outage return correct answers or clean typed
//!    errors — never wrong data, never a hang (every call is bounded by
//!    the router's io timeout);
//! 3. the fabric heals: the health loop reconnects the restarted node,
//!    replays the journal tail past the node's recovered `seq` (the
//!    crash-after-commit-before-ack window means the WAL can hold *more*
//!    than the node ever acked, so the replay cursor must come from the
//!    recovered descriptor, not the router's last-ack bookkeeping).
//!
//! Two kill cycles run back to back, one per shard, so both halves of the
//! keyspace see a node die and recover. `PC_CHAOS_SEED` reseeds the run.

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pc_pagestore::{PageStore, Point, WalConfig};
use pc_pst::{DynamicPst, TwoSided};
use pc_rng::Rng;
use pc_serve::wire::{Body, Op};
use pc_serve::{
    canonicalize, decode_commit_meta, Client, DynamicPstTarget, Registry, Router, RouterConfig,
    RouterError, Server, ServerConfig, ServerHandle, Service, ShardMap,
};
use pc_workloads::{gen_points, PointDist, DOMAIN};

const PAGE: usize = 512;
const REPLICAS: usize = 2;

fn seed() -> u64 {
    std::env::var("PC_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xC1A0_5C1A)
}

/// Starts (fresh path) or restarts-with-recovery (existing path) one
/// replica node, returning its handle and the number of update records its
/// recovered structure had durably applied — the router's replay cursor.
fn spawn_replica(path: &Path, preload: &[Point]) -> (ServerHandle, u64) {
    let existed = path.exists();
    let (store, report) = PageStore::file_durable(path, PAGE, WalConfig::default()).unwrap();
    let store = Arc::new(store);
    let meta = if existed { report.last_commit_meta.clone() } else { None };
    let (target, recovered_seq) = match meta.as_deref().and_then(decode_commit_meta) {
        Some((_batch, descriptors)) if matches!(descriptors.first(), Some(Some(_))) => {
            let desc = descriptors[0].as_ref().expect("matched Some");
            let target = DynamicPstTarget::open(&store, desc).unwrap();
            let seq = target.0.lock().seq();
            (target, seq)
        }
        _ => {
            // Fresh node, or a node killed before its first group commit:
            // rebuild the preload, replay everything.
            (DynamicPstTarget::new(DynamicPst::build(&store, preload).unwrap()), 0)
        }
    };
    let mut registry = Registry::new();
    registry.register("dyn", Box::new(target));
    let cfg = ServerConfig { workers: 2, ..ServerConfig::default() };
    let handle = Server::spawn(Service { store, registry }, cfg).unwrap();
    (handle, recovered_seq)
}

fn full_scan_reference(dynpst: &DynamicPst, store: &PageStore) -> Body {
    canonicalize(Body::Points(
        dynpst.query(store, TwoSided { x0: i64::MIN, y0: i64::MIN }).unwrap(),
    ))
}

struct Workload {
    rng: Rng,
    live: Vec<Point>,
    next_id: u64,
    /// Ops completed (acked update or finished query) — the kill trigger
    /// watches this so the node dies while the stream is in full flight.
    counter: Arc<AtomicU64>,
    queries_failed_over: u64,
}

impl Workload {
    /// One acked update through the router, mirrored into the reference
    /// only once the ack arrives — the at-least-once client convention:
    /// retry the identical op until the fabric acknowledges it.
    fn update(&mut self, router: &Router, reference: &mut DynamicPst, ref_store: &PageStore) {
        let delete = !self.live.is_empty() && self.rng.gen_bool(0.3);
        let op = if delete {
            let victim = self.live.swap_remove(self.rng.gen_range(0..self.live.len()));
            Op::Delete(victim)
        } else {
            self.next_id += 1;
            Op::Insert(Point {
                x: self.rng.gen_range(0..=DOMAIN),
                y: self.rng.gen_range(0..=DOMAIN),
                id: 20_000_000 + self.next_id,
            })
        };
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match router.update(0, 0, &op) {
                Ok(Body::Ack { .. }) => break,
                Ok(other) => panic!("update answered {other:?}"),
                Err(e) => {
                    // Typed and bounded; the op is retried verbatim.
                    let _ = e.code();
                    assert!(Instant::now() < deadline, "update never acked: {e}");
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
        }
        match &op {
            Op::Insert(p) => {
                reference.insert(ref_store, *p).unwrap();
                self.live.push(*p);
            }
            Op::Delete(p) => reference.delete(ref_store, *p).unwrap(),
            _ => unreachable!(),
        }
        self.counter.fetch_add(1, Ordering::Relaxed);
    }

    /// One read through the router. During an outage a clean typed error is
    /// acceptable (`must_succeed = false`); a *successful* answer must be
    /// bit-identical to the reference in every phase.
    fn query(
        &mut self,
        router: &Router,
        reference: &DynamicPst,
        ref_store: &PageStore,
        must_succeed: bool,
    ) {
        let q = TwoSided {
            x0: self.rng.gen_range(0..=DOMAIN),
            y0: self.rng.gen_range(0..=DOMAIN / 4),
        };
        let want = canonicalize(Body::Points(reference.query(ref_store, q).unwrap()));
        match router.query(0, 0, &Op::TwoSided { x0: q.x0, y0: q.y0 }) {
            Ok(got) => assert_eq!(got, want, "query diverged at {q:?}"),
            Err(e) if !must_succeed => {
                // Partial failure must surface as a typed router error, not
                // a hang or garbage — exercise the code mapping.
                let _ = e.code();
                if matches!(e, RouterError::BadRequest(_)) {
                    panic!("outage surfaced as BadRequest: {e}");
                }
                self.queries_failed_over += 1;
            }
            Err(e) => panic!("query failed on a healthy fabric: {e}"),
        }
        self.counter.fetch_add(1, Ordering::Relaxed);
    }

    fn mixed_ops(
        &mut self,
        router: &Router,
        reference: &mut DynamicPst,
        ref_store: &PageStore,
        count: usize,
        must_succeed: bool,
    ) {
        for i in 0..count {
            if i % 4 == 3 {
                self.query(router, reference, ref_store, must_succeed);
            } else {
                self.update(router, reference, ref_store);
            }
        }
    }
}

fn wait_all_healthy(router: &Router, what: &str) {
    let t0 = Instant::now();
    while !router.replica_health().iter().flatten().all(|&h| h) {
        assert!(t0.elapsed() < Duration::from_secs(15), "{what}: fabric never healed");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn node_kill_mid_workload_loses_no_acked_updates() {
    let seed = seed();
    let dir = std::env::temp_dir().join(format!("pc-cluster-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let points: Vec<Point> = gen_points(1_000, PointDist::Uniform, seed)
        .iter()
        .map(|&(x, y, id)| Point { x, y, id })
        .collect();
    let splits = vec![DOMAIN / 2];
    let map = ShardMap::new(splits.clone());
    let parts = map.partition_points(&points);

    let mut paths: Vec<Vec<PathBuf>> = Vec::new();
    let mut handles: Vec<Vec<Option<ServerHandle>>> = Vec::new();
    let mut addrs: Vec<Vec<SocketAddr>> = Vec::new();
    for (s, part) in parts.iter().enumerate() {
        let (mut ps, mut hs, mut ads) = (Vec::new(), Vec::new(), Vec::new());
        for r in 0..REPLICAS {
            let path = dir.join(format!("s{s}r{r}.pcstore"));
            let (handle, recovered) = spawn_replica(&path, part);
            assert_eq!(recovered, 0, "fresh node must not claim recovered records");
            ads.push(handle.addr());
            ps.push(path);
            hs.push(Some(handle));
        }
        paths.push(ps);
        handles.push(hs);
        addrs.push(ads);
    }
    let router = Arc::new(
        Router::connect(
            &addrs,
            splits,
            RouterConfig {
                health_interval: Duration::from_millis(25),
                seed,
                ..RouterConfig::default()
            },
        )
        .unwrap(),
    );

    // The reference: acked updates only, one unpartitioned in-memory store.
    let ref_store = PageStore::in_memory(PAGE);
    let mut reference = DynamicPst::build(&ref_store, &points).unwrap();
    let mut wl = Workload {
        rng: Rng::seed_from_u64(seed ^ 0xD1E),
        live: points.clone(),
        next_id: 0,
        counter: Arc::new(AtomicU64::new(0)),
        queries_failed_over: 0,
    };

    // Two kill cycles, one per shard; the victim replica index is seeded.
    for (cycle, kill_shard) in [0usize, 1].into_iter().enumerate() {
        let kill_replica = wl.rng.gen_range(0..REPLICAS);
        let base = wl.counter.load(Ordering::Relaxed);
        let kill_at = base + 40 + wl.rng.gen_range(0..40u64);

        // The killer fires the moment the op stream crosses `kill_at`, so
        // the node dies while updates are in full flight (often with a
        // batch admitted but unacked — the mid-update-batch case).
        let victim = handles[kill_shard][kill_replica].take().unwrap();
        let killer = {
            let counter = Arc::clone(&wl.counter);
            std::thread::spawn(move || {
                while counter.load(Ordering::Relaxed) < kill_at {
                    std::thread::sleep(Duration::from_micros(200));
                }
                victim.kill();
                victim
            })
        };

        // Outage phase: the workload keeps running across the kill. Acked
        // updates keep landing (the sibling replica carries the shard) and
        // successful queries stay bit-identical.
        wl.mixed_ops(&router, &mut reference, &ref_store, 160, false);
        let victim = killer.join().unwrap();
        victim.join(); // release the store file before recovery reopens it

        // Restart from the WAL. The recovered seq — not the router's
        // last-ack cursor — decides where journal replay resumes, because
        // the node may have committed a batch it never got to ack.
        let (handle, recovered_seq) =
            spawn_replica(&paths[kill_shard][kill_replica], &parts[kill_shard]);
        eprintln!(
            "cycle {cycle}: killed s{kill_shard}r{kill_replica} at op {kill_at}, \
             WAL recovered {recovered_seq} applied update records"
        );
        addrs[kill_shard][kill_replica] = handle.addr();
        router.set_replica_caught_up(kill_shard, kill_replica, recovered_seq);
        router.set_replica_addr(kill_shard, kill_replica, handle.addr());
        handles[kill_shard][kill_replica] = Some(handle);
        wait_all_healthy(&router, "post-restart");

        // Healthy phase: every query must now succeed and stay identical.
        wl.mixed_ops(&router, &mut reference, &ref_store, 60, true);

        // The router must match the reference exactly after the cycle.
        let want = full_scan_reference(&reference, &ref_store);
        let got = router.query(0, 0, &Op::TwoSided { x0: i64::MIN, y0: i64::MIN }).unwrap();
        assert_eq!(got, want, "cycle {cycle}: router diverged from acked reference");
    }

    // Every replica — including both restarted ones — must hold exactly the
    // acked state for its shard: nothing lost, nothing applied twice.
    let live_sorted = {
        let mut v = wl.live.clone();
        v.sort_unstable_by_key(|p| (p.x, p.y, p.id));
        v
    };
    for (s, shard_addrs) in addrs.iter().enumerate() {
        let want: Vec<Point> = live_sorted
            .iter()
            .copied()
            .filter(|p| router.map().shard_of(p.x) == s)
            .collect();
        for (r, &addr) in shard_addrs.iter().enumerate() {
            let mut c = Client::connect(addr, Duration::from_secs(5)).unwrap();
            let resp = c.call(0, 0, Op::TwoSided { x0: i64::MIN, y0: i64::MIN }).unwrap();
            let got = canonicalize(resp.body);
            assert_eq!(
                got,
                Body::Points(want.clone()),
                "replica s{s}r{r} diverged from the acked reference"
            );
        }
    }

    // The healing machinery must actually have run: both shards saw a
    // reconnect, and the fabric reports zero dead replicas at the end.
    let stats = router.stat_pairs();
    let sum = |needle: &str| -> u64 {
        stats.iter().filter(|(k, _)| k.contains(needle)).map(|&(_, v)| v).sum()
    };
    assert!(sum("pc_shard_reconnects") >= 2, "expected a reconnect per cycle: {stats:?}");
    assert_eq!(sum("pc_shard_dead_replicas"), 0, "fabric must end fully healthy");
    eprintln!(
        "acked journal: {} entries; replayed into restarted nodes: {}; \
         read failovers: {}; reconnects: {}; queries errored during outages: {}",
        sum("pc_shard_journal_len"),
        sum("pc_shard_replayed_updates"),
        sum("pc_shard_failovers"),
        sum("pc_shard_reconnects"),
        wl.queries_failed_over
    );

    router.shutdown();
    for hs in handles {
        for h in hs.into_iter().flatten() {
            h.join();
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
