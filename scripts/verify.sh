#!/usr/bin/env bash
# Hermetic verification gate.
#
# Proves the workspace builds and tests with the network disabled, passes
# clippy with warnings denied, and that the dependency graph contains only
# workspace-local crates — i.e. nothing resolves from crates.io or any
# other registry. Run from anywhere; it cd's to the repo root.
#
# Both instrumentation modes are exercised: the default build (pc-obs
# compiled to no-ops) and `--features obs` (live tracing/metrics).
#
# Usage: scripts/verify.sh [--bench] [--chaos] [--cluster] [--crash] [--mvcc] [--serve] [--layout] [--obs]
#   --bench   additionally run the perf-trajectory benchmarks:
#             * pool_scaling, refreshing BENCH_pool.json;
#             * obs_overhead in both modes, merging the two reports into
#               BENCH_obs.json and GATING the off-mode marginal span cost
#             at <= 1% (the "observability is free when off" contract).
#   --layout  additionally run the physical-layout benchmark (build-order
#             vs van Emde Boas repacked, file-backed, cold cache when the
#             host permits dropping the page cache), refreshing
#             BENCH_layout.json and GATING the largest-n ratio: the
#             repacked layout must not be slower than build order.
#   --chaos   additionally re-run the fault-injection suites under a fresh
#             random seed (the fixed-seed runs are already part of the
#             workspace tests above). The seed is printed so a failure can
#             be reproduced verbatim with PC_CHAOS_SEED=<seed>.
#   --crash   additionally run the crash-point suite (kill-point matrix,
#             per-structure acked-survives, store durability, WAL codec
#             properties) in both instrumentation modes under a hard
#             timeout — a recovery hang is a failure, not a stall.
#   --cluster additionally gate the shard fabric: run the scatter-gather
#             merge property suite and the whole-node-kill chaos suite in
#             both instrumentation modes under hard timeouts (a hung
#             failover or replay is a failure, not a stall) and under one
#             fresh seed, then run the router smoke bench and check
#             BENCH_cluster.json: tail latency rows for 1/2/4 shards and a
#             hot-shard phase that actually shed on the hot shard.
#   --mvcc    additionally gate the versioning/MVCC subsystem: run the
#             snapshot-semantics property suite in both instrumentation
#             modes under hard timeouts, then the loadgen MVCC smoke
#             (identical read traffic with writers off vs on, an epoch
#             installed per acked write batch) and check BENCH_mvcc.json:
#             both phases completed, the writer actually installed epochs,
#             GC kept the retained window bounded, and the mixed-load read
#             p99 is within 25% of the read-only p99 — the "readers never
#             block on updates" contract, measured end to end.
#   --serve   additionally gate the service layer: build pc-serve and
#             pc-loadgen in both instrumentation modes, run the loadgen
#             smoke (self-spawned server, steady + overload-shed phases)
#             under a hard timeout, and check BENCH_server.json is
#             well-formed and actually shed load.
#   --obs     additionally gate the observability plane:
#             * the off-mode marginal span cost <= 1% (same measurement
#               as --bench, shared, runs once);
#             * the runtime 1-in-N sampling knob: a same-binary A/B
#               loadgen run (--sample 0 vs --sample 8) must show <= 3%
#               steady-phase p99 overhead;
#             * the scraped metrics block in BENCH_server.json: the
#               Prometheus text parses, the structured stats carry the
#               service and per-target families, and the slow-query log
#               drained entries with span trees.
set -euo pipefail

cd "$(dirname "$0")/.."

RUN_BENCH=0
RUN_CHAOS=0
RUN_CLUSTER=0
RUN_CRASH=0
RUN_MVCC=0
RUN_SERVE=0
RUN_LAYOUT=0
RUN_OBS=0
for arg in "$@"; do
    case "$arg" in
        --bench) RUN_BENCH=1 ;;
        --chaos) RUN_CHAOS=1 ;;
        --cluster) RUN_CLUSTER=1 ;;
        --crash) RUN_CRASH=1 ;;
        --mvcc) RUN_MVCC=1 ;;
        --serve) RUN_SERVE=1 ;;
        --layout) RUN_LAYOUT=1 ;;
        --obs) RUN_OBS=1 ;;
        *) echo "unknown argument: $arg (supported: --bench, --chaos, --cluster, --crash, --mvcc, --serve, --layout, --obs)" >&2; exit 2 ;;
    esac
done

# Temp files registered here are removed on exit (paths come from mktemp,
# never contain spaces).
TMPF=""
# shellcheck disable=SC2064
trap 'rm -f $TMPF' EXIT

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "==> cargo test -q --offline --workspace --features obs"
cargo test -q --offline --workspace --features obs

echo "==> cargo build --offline --benches (bench harness compiles)"
cargo build --offline --benches --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo clippy --workspace --all-targets --features obs -- -D warnings"
cargo clippy --workspace --all-targets --offline --features obs -- -D warnings

echo "==> checking that the dependency graph is workspace-only"
# Every package in the resolved graph must come from a local path source
# (cargo metadata reports `"source": null` for path dependencies). Any
# registry/git source means the build is no longer hermetic.
METADATA="$(cargo metadata --format-version 1 --offline)"
NON_LOCAL="$(
  printf '%s' "$METADATA" | python3 -c '
import json, sys
meta = json.load(sys.stdin)
bad = [p["id"] for p in meta["packages"] if p["source"] is not None]
print("\n".join(bad))
'
)"
if [ -n "$NON_LOCAL" ]; then
    echo "ERROR: non-workspace packages in the dependency graph:" >&2
    echo "$NON_LOCAL" >&2
    exit 1
fi

COUNT="$(printf '%s' "$METADATA" | python3 -c 'import json,sys; print(len(json.load(sys.stdin)["packages"]))')"
echo "OK: all $COUNT packages are workspace-local; hermetic build verified"

if [ "$RUN_CHAOS" = 1 ]; then
    # The fixed-seed chaos runs are part of `cargo test --workspace` above;
    # this pass explores one fresh seed per invocation. On failure, rerun
    # the printed command to reproduce the exact scenario.
    CHAOS_SEED="$(python3 -c 'import secrets; print(secrets.randbits(64))')"
    echo "==> chaos suites under fresh seed $CHAOS_SEED"
    echo "    (reproduce with: PC_CHAOS_SEED=$CHAOS_SEED cargo test -q --test chaos)"
    PC_CHAOS_SEED="$CHAOS_SEED" cargo test -q --offline --test chaos
    echo "OK: chaos suites green under seed $CHAOS_SEED"
fi

if [ "$RUN_CRASH" = 1 ]; then
    # Kill-point matrix + per-structure acked-survives live in the
    # workspace-level crash_recovery suite; the store-level durability and
    # WAL-codec property suites live in pc-pagestore. All three run in both
    # instrumentation modes. The hard timeouts turn a recovery hang (a
    # replay loop that never terminates, a lock held across a crash point)
    # into a failure instead of a stuck CI job.
    echo "==> crash-point suite (hard timeout, default mode)"
    timeout 300 cargo test -q --offline --test crash_recovery
    timeout 300 cargo test -q --offline -p pc-pagestore --test durability --test wal_proptest
    echo "==> crash-point suite (hard timeout, --features obs)"
    timeout 300 cargo test -q --offline --test crash_recovery --features obs
    timeout 300 cargo test -q --offline -p pc-pagestore --features obs \
        --test durability --test wal_proptest
    echo "OK: crash-point suite green in both instrumentation modes"
fi

if [ "$RUN_CLUSTER" = 1 ]; then
    # The fixed-seed runs of both fabric suites are already part of
    # `cargo test --workspace` above; this pass re-runs them in both
    # instrumentation modes under hard timeouts (a wedged failover, health
    # loop, or journal replay must fail, not stall CI) plus one fresh seed.
    CLUSTER_SEED="$(python3 -c 'import secrets; print(secrets.randbits(64))')"
    echo "==> shard-fabric suites, default mode (hard timeout, fresh seed $CLUSTER_SEED)"
    echo "    (reproduce with: PC_CHAOS_SEED=$CLUSTER_SEED cargo test -q --test cluster_chaos --test router_merge)"
    PC_CHAOS_SEED="$CLUSTER_SEED" timeout 300 cargo test -q --offline \
        --test cluster_chaos --test router_merge
    echo "==> shard-fabric suites, --features obs (hard timeout, fixed seed)"
    timeout 300 cargo test -q --offline --features obs \
        --test cluster_chaos --test router_merge

    echo "==> cluster bench: build pc-loadgen + pc-router in both modes"
    cargo build --release --offline -p pc-loadgen -p pc-router
    cargo build --release --offline -p pc-router --features obs
    cargo build --release --offline -p pc-loadgen

    # Router smoke: self-spawns shard fleets of 1/2/4 nodes behind the
    # scatter-gather front-end for tail-latency rows, then a deliberately
    # skewed open-loop phase against undersized hot-shard queues — the
    # per-shard scrape must show the hot shard shedding while the cold
    # shards stay clean.
    echo "==> pc-loadgen --router --smoke (hard timeout 120s)"
    timeout 120 target/release/pc-loadgen --router --smoke --out BENCH_cluster.json

    python3 - BENCH_cluster.json <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["bench"] == "cluster", doc
assert doc["page_size"] > 0 and doc["hardware_threads"] > 0, doc
phases = {p["name"]: p for p in doc["phases"]}
for k in doc["shard_counts"]:
    row = phases[f"shards_{k}"]
    assert row["ok"] > 0, f"shards_{k}: zero completed requests"
    assert row["other_errors"] == 0, f"shards_{k}: unexpected errors: {row}"
    assert row["latency_ns"]["p50"] <= row["latency_ns"]["p99"], f"shards_{k}: malformed quantiles"
hot = phases["hot_shard"]
assert hot["overloaded"] > 0, "hot-shard phase never shed load"
per = hot["per_shard"]
errs = {}
for key, v in per.items():
    if key.startswith("pc_shard_errors_total"):
        errs[key.split('"')[1]] = v
hot_errs = errs.pop("0")
assert hot_errs > 0, f"hot shard shed nothing: {per}"
assert all(hot_errs >= v for v in errs.values()), f"shedding not concentrated on the hot shard: {errs}"
for k in doc["shard_counts"]:
    row = phases[f"shards_{k}"]
    print(f'shards={k}: {row["ok"]} ok @ {row["throughput_ops_s"]:.0f} ops/s, '
          f'p99={row["latency_ns"]["p99"]}ns')
print(f'hot-shard: {hot["ok"]} admitted / {hot["overloaded"]} shed; '
      f'hot errors={hot_errs}, cold max={max(errs.values())}')
PY
    echo "OK: shard-fabric suites green, BENCH_cluster.json refreshed"
fi

if [ "$RUN_MVCC" = 1 ]; then
    # The snapshot-semantics property suite (pinned snapshots are immutable
    # across installs, as_of replays are bit-identical, readers take zero
    # exclusive locks while batches install) in both instrumentation modes.
    # Hard timeouts: a reader blocked on an install is the exact bug class
    # this subsystem exists to rule out, and it must fail, not stall CI.
    echo "==> snapshot-semantics suite (hard timeout, default mode)"
    timeout 300 cargo test -q --offline --test snapshot_semantics
    echo "==> snapshot-semantics suite (hard timeout, --features obs)"
    timeout 300 cargo test -q --offline --test snapshot_semantics --features obs

    echo "==> mvcc bench: build pc-serve + pc-loadgen in both modes"
    cargo build --release --offline -p pc-serve -p pc-loadgen --features pc-serve/obs,pc-loadgen/obs
    cargo build --release --offline -p pc-serve -p pc-loadgen

    # MVCC smoke: the same closed-loop read traffic twice, writers off vs
    # on (a paced temporal insert/expire stream, one epoch per acked
    # batch). Readers pin snapshots and never block, so the mixed-phase
    # read p99 must stay within 25% of the read-only p99. The histogram
    # buckets are powers of two, so an equal-bucket ratio of 1.0 is the
    # expected outcome and the 1.25 gate tolerates exactly zero bucket
    # steps; up to three attempts absorb scheduler noise on busy hosts.
    echo "==> pc-loadgen --mvcc --smoke (hard timeout 120s)"
    MVCC_PASS=0
    for attempt in 1 2 3; do
        timeout 120 target/release/pc-loadgen --mvcc --smoke --out BENCH_mvcc.json
        if python3 - BENCH_mvcc.json <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["bench"] == "mvcc", doc
assert doc["page_size"] > 0 and doc["hardware_threads"] > 0, doc
phases = {p["name"]: p for p in doc["phases"]}
assert "read_only" in phases and "mixed_read" in phases, list(phases)
for name, p in phases.items():
    assert p["ok"] > 0, f"{name}: zero completed reads"
    assert p["other_errors"] == 0, f"{name}: unexpected errors: {p}"
    assert p["latency_ns"]["p50"] <= p["latency_ns"]["p99"], f"{name}: malformed quantiles"
mixed = phases["mixed_read"]
assert mixed["writes"] > 0, "mixed phase: writer installed nothing"
assert mixed["write_errors"] == 0, f"mixed phase: write errors: {mixed}"
v = doc["versions"]
assert v["installed"] > 0, f"no epochs installed: {v}"
assert v["current"] == v["installed"], f"one epoch per applied batch: {v}"
assert v["oldest"] <= v["current"], f"malformed retained window: {v}"
ratio = doc["p99_ratio"]
print(f'read_only p99={phases["read_only"]["latency_ns"]["p99"]}ns, '
      f'mixed p99={mixed["latency_ns"]["p99"]}ns under {mixed["writes"]} writes '
      f'({v["installed"]} epochs, {v["reclaimed_pages"]} pages reclaimed); '
      f'ratio {ratio:.3f} (gate: <= 1.25)')
sys.exit(0 if ratio <= 1.25 else 1)
PY
        then
            MVCC_PASS=1
            break
        fi
        echo "attempt $attempt: mvcc gate not met, retrying"
    done
    if [ "$MVCC_PASS" != 1 ]; then
        echo "GATE FAILED: mixed-load read p99 > 1.25x read-only p99" >&2
        exit 1
    fi
    echo "OK: snapshot suites green in both modes, BENCH_mvcc.json refreshed, p99 gate passed"
fi

if [ "$RUN_SERVE" = 1 ]; then
    echo "==> service layer: build pc-serve + pc-loadgen in both modes"
    cargo build --release --offline -p pc-serve -p pc-loadgen
    cargo build --release --offline -p pc-serve -p pc-loadgen --features pc-serve/obs,pc-loadgen/obs

    # Loadgen smoke: self-spawns a server on an ephemeral port, runs a
    # steady closed-loop phase plus an overload-shed phase against a
    # deliberately undersized queue. The hard timeout turns any hang (the
    # exact bug class the idle/read timeouts exist for) into a failure.
    # --scrape --sample 8 exercises the observability plane in passing:
    # the artifact carries a mid-run and final ADMIN scrape (structured
    # stats, Prometheus text, slow-query log) next to the latency phases.
    echo "==> pc-loadgen --smoke --scrape --sample 8 (hard timeout 120s)"
    timeout 120 target/release/pc-loadgen --smoke --scrape --sample 8 --out BENCH_server.json

    python3 - BENCH_server.json <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["bench"] == "server", doc
phases = {p["name"]: p for p in doc["phases"]}
assert "steady" in phases and "shed" in phases, list(phases)
for name, p in phases.items():
    assert p["ok"] > 0, f"{name}: zero completed requests"
    assert p["latency_ns"]["p50"] <= p["latency_ns"]["p99"], f"{name}: malformed quantiles"
assert phases["shed"]["overloaded"] > 0, "shed phase never shed load"
print(f'steady: {phases["steady"]["ok"]} ok @ {phases["steady"]["throughput_ops_s"]:.0f} ops/s, '
      f'p99={phases["steady"]["latency_ns"]["p99"]}ns')
print(f'shed: {phases["shed"]["ok"]} admitted / {phases["shed"]["overloaded"]} overloaded, '
      f'admitted p99={phases["shed"]["latency_ns"]["p99"]}ns')
PY
    echo "OK: BENCH_server.json refreshed, service smoke passed"
fi

# Off-mode span-cost gate, shared by --bench and --obs (runs at most once
# per invocation): obs_overhead in both modes, merged into BENCH_obs.json,
# gating the disabled-mode marginal cost at <= 1% — the "observability is
# free when off" contract.
OBS_OVERHEAD_DONE=0
obs_overhead_gate() {
    if [ "$OBS_OVERHEAD_DONE" = 1 ]; then
        return 0
    fi
    echo "==> cargo bench -p pc-bench --bench obs_overhead (both modes)"
    OBS_OFF_JSON="$(mktemp)"
    OBS_ON_JSON="$(mktemp)"
    TMPF="$TMPF $OBS_OFF_JSON $OBS_ON_JSON"
    PC_BENCH_OUT="$OBS_OFF_JSON" cargo bench --offline -p pc-bench --bench obs_overhead
    PC_BENCH_OUT="$OBS_ON_JSON" cargo bench --offline -p pc-bench --features obs --bench obs_overhead
    # Merge the two runs into one artifact and gate the off-mode cost:
    # with pc-obs compiled out, an extra span per op must be free (<= 1%).
    python3 - "$OBS_OFF_JSON" "$OBS_ON_JSON" <<'PY'
import json, sys
off = json.load(open(sys.argv[1]))
on = json.load(open(sys.argv[2]))
assert off["obs_enabled"] == "false" and on["obs_enabled"] == "true", \
    f'mode mixup: off={off["obs_enabled"]} on={on["obs_enabled"]}'
merged = {"bench": "obs_overhead", "off": off, "on": on}
with open("BENCH_obs.json", "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
pct = off["overhead_pct"]
print(f'off-mode marginal span overhead: {pct:+.2f}% (gate: <= 1%)')
print(f'on-mode marginal span overhead: {on["overhead_pct"]:+.2f}% (informational)')
if pct > 1.0:
    sys.exit(f"GATE FAILED: disabled-mode span overhead {pct:.2f}% > 1%")
PY
    echo "OK: BENCH_obs.json refreshed, off-mode overhead gate passed"
    OBS_OVERHEAD_DONE=1
}

if [ "$RUN_BENCH" = 1 ]; then
    echo "==> cargo bench -p pc-bench --bench pool_scaling (perf trajectory)"
    cargo bench --offline -p pc-bench --bench pool_scaling
    echo "OK: BENCH_pool.json refreshed"

    obs_overhead_gate
fi

if [ "$RUN_LAYOUT" = 1 ]; then
    # Wall-clock complement of the strict-model transfer counts: the
    # repack pass is only worth shipping if the vEB layout is never slower
    # than build order on a real file. A tie is acceptable (warm page
    # cache, fast device); a regression is not. The 10% headroom absorbs
    # timer noise on busy hosts.
    echo "==> cargo bench -p pc-bench --bench layout_bench (hard timeout 600s)"
    timeout 600 cargo bench --offline -p pc-bench --bench layout_bench
    python3 - BENCH_layout.json <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["bench"] == "layout", doc
assert doc["page_size"] > 0 and doc["hardware_threads"] > 0, doc
assert doc["rows"], "no measurement rows"
for row in doc["rows"]:
    assert row["build_ns_per_query"] > 0 and row["packed_ns_per_query"] > 0, row
ratio = doc["ratio_largest_n"]
largest = doc["rows"][-1]
print(f'largest n={largest["n"]}: build {largest["build_ns_per_query"]}ns, '
      f'packed {largest["packed_ns_per_query"]}ns, ratio {ratio:.3f} '
      f'(cold_cache={doc["cold_cache"]})')
if ratio > 1.10:
    sys.exit(f"GATE FAILED: repacked layout is {ratio:.3f}x build order (> 1.10)")
PY
    echo "OK: BENCH_layout.json refreshed, layout gate passed"
fi

if [ "$RUN_OBS" = 1 ]; then
    # (a) instrumentation is free when compiled out.
    obs_overhead_gate

    echo "==> observability plane: build release pc-serve + pc-loadgen"
    cargo build --release --offline -p pc-serve -p pc-loadgen

    # (b) the runtime sampling knob is compiled into release binaries, so
    # its price is gated end to end: the *same* loadgen/server binary runs
    # the smoke twice, --sample 0 vs --sample 8, and the steady-phase p99
    # must not degrade by more than 3%. The latency histogram buckets are
    # powers of two, so identical p99s are the expected outcome; when the
    # bucket differs the gate falls back to the mean with the same 3%
    # headroom (a one-bucket p99 jump is a 2x step, pure quantization).
    # 20k ops per arm — the 2k-op smoke is too short to resolve 3% — and
    # up to three attempts absorb scheduler noise on busy hosts.
    echo "==> sampling-overhead A/B (same binary, --sample 0 vs --sample 8)"
    AB_OFF="$(mktemp)"
    AB_ON="$(mktemp)"
    TMPF="$TMPF $AB_OFF $AB_ON"
    AB_ARGS="--ops 20000 --conns 2 --points 5000"
    AB_PASS=0
    for attempt in 1 2 3; do
        # shellcheck disable=SC2086
        timeout 120 target/release/pc-loadgen $AB_ARGS --sample 0 --out "$AB_OFF" >/dev/null
        # shellcheck disable=SC2086
        timeout 120 target/release/pc-loadgen $AB_ARGS --sample 8 --out "$AB_ON" >/dev/null
        if python3 - "$AB_OFF" "$AB_ON" <<'PY'
import json, sys
off = json.load(open(sys.argv[1]))
on = json.load(open(sys.argv[2]))
assert off["trace_sample_every"] == 0 and on["trace_sample_every"] == 8, "arm mixup"
def steady(doc):
    return next(p for p in doc["phases"] if p["name"] == "steady")
s_off, s_on = steady(off), steady(on)
p99_off, p99_on = s_off["latency_ns"]["p99"], s_on["latency_ns"]["p99"]
mean_off, mean_on = s_off["latency_ns"]["mean"], s_on["latency_ns"]["mean"]
print(f"p99 off={p99_off}ns on={p99_on}ns | mean off={mean_off:.0f}ns on={mean_on:.0f}ns")
if p99_on <= p99_off * 1.03:
    sys.exit(0)
if mean_on <= mean_off * 1.03:
    print("p99 moved a (power-of-two) bucket; mean within 3% — accepting")
    sys.exit(0)
sys.exit(1)
PY
        then
            AB_PASS=1
            break
        fi
        echo "attempt $attempt: sampling overhead above gate, retrying"
    done
    if [ "$AB_PASS" != 1 ]; then
        echo "GATE FAILED: 1-in-8 sampling adds > 3% steady-phase latency" >&2
        exit 1
    fi
    echo "OK: sampling-mode overhead gate passed"

    # (c) the scraped metrics block in BENCH_server.json is well-formed.
    # Always regenerated here with the default (no-features) binary built
    # above — --serve's feature build overwrites target/release/pc-loadgen
    # in place, and committed artifacts come from the default build.
    echo "==> pc-loadgen --smoke --scrape --sample 8 (hard timeout 120s)"
    timeout 120 target/release/pc-loadgen --smoke --scrape --sample 8 --out BENCH_server.json
    python3 - BENCH_server.json <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["bench"] == "server", doc
assert doc["trace_sample_every"] == 8, doc.get("trace_sample_every")
scrape = doc["scrape"]
for when in ("mid", "final"):
    s = scrape[when]
    assert s["metrics_families"] > 0, f"{when}: no metric families"
    stats = s["stats"]
    assert stats, f"{when}: empty structured stats"
    # Every Prometheus line is a TYPE declaration, a comment, or a
    # `name value` sample with a parseable value.
    typed = set()
    for line in s["metrics_text"].splitlines():
        if not line:
            continue
        if line.startswith("# TYPE "):
            fam, kind = line[len("# TYPE "):].split()
            assert kind in ("counter", "gauge", "histogram"), line
            assert fam not in typed, f"duplicate TYPE {fam}"
            typed.add(fam)
            continue
        if line.startswith("#"):
            continue
        name, value = line.rsplit(" ", 1)
        float(value)  # raises on malformed samples
    assert len(typed) == s["metrics_families"], f"{when}: family count drifted"
final = scrape["final"]["stats"]
assert final["pc_serve_requests_total"] > 0, "no requests recorded"
assert any(k.startswith("pc_target_") for k in final), "per-target families missing"
assert final["pc_serve_traces_retained_total"] > 0, "sampling retained no traces"
assert isinstance(scrape["final"]["slowlog"], list) and scrape["final"]["slowlog"], \
    "slow-query log never populated"
for e in scrape["final"]["slowlog"]:
    assert e["spans"] >= 1, f"slowlog entry without a span tree: {e}"
print(f'scrape ok: {scrape["final"]["metrics_families"]} families, '
      f'{final["pc_serve_requests_total"]} requests, '
      f'{final["pc_serve_traces_retained_total"]} traces retained, '
      f'{len(scrape["final"]["slowlog"])} slowlog entries')
PY
    echo "OK: observability gates passed (off-mode cost, sampling A/B, scrape block)"
fi
