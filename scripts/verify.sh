#!/usr/bin/env bash
# Hermetic verification gate.
#
# Proves the workspace builds and tests with the network disabled, passes
# clippy with warnings denied, and that the dependency graph contains only
# workspace-local crates — i.e. nothing resolves from crates.io or any
# other registry. Run from anywhere; it cd's to the repo root.
#
# Usage: scripts/verify.sh [--bench]
#   --bench   additionally run the buffer-pool scaling benchmark, which
#             refreshes the BENCH_pool.json perf-trajectory artifact at the
#             repo root (slow-ish; see crates/bench/benches/pool_scaling.rs).
set -euo pipefail

cd "$(dirname "$0")/.."

RUN_BENCH=0
for arg in "$@"; do
    case "$arg" in
        --bench) RUN_BENCH=1 ;;
        *) echo "unknown argument: $arg (supported: --bench)" >&2; exit 2 ;;
    esac
done

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "==> cargo build --offline --benches (bench harness compiles)"
cargo build --offline --benches --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> checking that the dependency graph is workspace-only"
# Every package in the resolved graph must come from a local path source
# (cargo metadata reports `"source": null` for path dependencies). Any
# registry/git source means the build is no longer hermetic.
METADATA="$(cargo metadata --format-version 1 --offline)"
NON_LOCAL="$(
  printf '%s' "$METADATA" | python3 -c '
import json, sys
meta = json.load(sys.stdin)
bad = [p["id"] for p in meta["packages"] if p["source"] is not None]
print("\n".join(bad))
'
)"
if [ -n "$NON_LOCAL" ]; then
    echo "ERROR: non-workspace packages in the dependency graph:" >&2
    echo "$NON_LOCAL" >&2
    exit 1
fi

COUNT="$(printf '%s' "$METADATA" | python3 -c 'import json,sys; print(len(json.load(sys.stdin)["packages"]))')"
echo "OK: all $COUNT packages are workspace-local; hermetic build verified"

if [ "$RUN_BENCH" = 1 ]; then
    echo "==> cargo bench -p pc-bench --bench pool_scaling (perf trajectory)"
    cargo bench --offline -p pc-bench --bench pool_scaling
    echo "OK: BENCH_pool.json refreshed"
fi
