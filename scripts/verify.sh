#!/usr/bin/env bash
# Hermetic verification gate.
#
# Proves the workspace builds and tests with the network disabled, passes
# clippy with warnings denied, and that the dependency graph contains only
# workspace-local crates — i.e. nothing resolves from crates.io or any
# other registry. Run from anywhere; it cd's to the repo root.
#
# Both instrumentation modes are exercised: the default build (pc-obs
# compiled to no-ops) and `--features obs` (live tracing/metrics).
#
# Usage: scripts/verify.sh [--bench] [--chaos]
#   --bench   additionally run the perf-trajectory benchmarks:
#             * pool_scaling, refreshing BENCH_pool.json;
#             * obs_overhead in both modes, merging the two reports into
#               BENCH_obs.json and GATING the off-mode marginal span cost
#             at <= 1% (the "observability is free when off" contract).
#   --chaos   additionally re-run the fault-injection suites under a fresh
#             random seed (the fixed-seed runs are already part of the
#             workspace tests above). The seed is printed so a failure can
#             be reproduced verbatim with PC_CHAOS_SEED=<seed>.
set -euo pipefail

cd "$(dirname "$0")/.."

RUN_BENCH=0
RUN_CHAOS=0
for arg in "$@"; do
    case "$arg" in
        --bench) RUN_BENCH=1 ;;
        --chaos) RUN_CHAOS=1 ;;
        *) echo "unknown argument: $arg (supported: --bench, --chaos)" >&2; exit 2 ;;
    esac
done

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "==> cargo test -q --offline --workspace --features obs"
cargo test -q --offline --workspace --features obs

echo "==> cargo build --offline --benches (bench harness compiles)"
cargo build --offline --benches --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo clippy --workspace --all-targets --features obs -- -D warnings"
cargo clippy --workspace --all-targets --offline --features obs -- -D warnings

echo "==> checking that the dependency graph is workspace-only"
# Every package in the resolved graph must come from a local path source
# (cargo metadata reports `"source": null` for path dependencies). Any
# registry/git source means the build is no longer hermetic.
METADATA="$(cargo metadata --format-version 1 --offline)"
NON_LOCAL="$(
  printf '%s' "$METADATA" | python3 -c '
import json, sys
meta = json.load(sys.stdin)
bad = [p["id"] for p in meta["packages"] if p["source"] is not None]
print("\n".join(bad))
'
)"
if [ -n "$NON_LOCAL" ]; then
    echo "ERROR: non-workspace packages in the dependency graph:" >&2
    echo "$NON_LOCAL" >&2
    exit 1
fi

COUNT="$(printf '%s' "$METADATA" | python3 -c 'import json,sys; print(len(json.load(sys.stdin)["packages"]))')"
echo "OK: all $COUNT packages are workspace-local; hermetic build verified"

if [ "$RUN_CHAOS" = 1 ]; then
    # The fixed-seed chaos runs are part of `cargo test --workspace` above;
    # this pass explores one fresh seed per invocation. On failure, rerun
    # the printed command to reproduce the exact scenario.
    CHAOS_SEED="$(python3 -c 'import secrets; print(secrets.randbits(64))')"
    echo "==> chaos suites under fresh seed $CHAOS_SEED"
    echo "    (reproduce with: PC_CHAOS_SEED=$CHAOS_SEED cargo test -q --test chaos)"
    PC_CHAOS_SEED="$CHAOS_SEED" cargo test -q --offline --test chaos
    echo "OK: chaos suites green under seed $CHAOS_SEED"
fi

if [ "$RUN_BENCH" = 1 ]; then
    echo "==> cargo bench -p pc-bench --bench pool_scaling (perf trajectory)"
    cargo bench --offline -p pc-bench --bench pool_scaling
    echo "OK: BENCH_pool.json refreshed"

    echo "==> cargo bench -p pc-bench --bench obs_overhead (both modes)"
    OBS_OFF_JSON="$(mktemp)"
    OBS_ON_JSON="$(mktemp)"
    trap 'rm -f "$OBS_OFF_JSON" "$OBS_ON_JSON"' EXIT
    PC_BENCH_OUT="$OBS_OFF_JSON" cargo bench --offline -p pc-bench --bench obs_overhead
    PC_BENCH_OUT="$OBS_ON_JSON" cargo bench --offline -p pc-bench --features obs --bench obs_overhead
    # Merge the two runs into one artifact and gate the off-mode cost:
    # with pc-obs compiled out, an extra span per op must be free (<= 1%).
    python3 - "$OBS_OFF_JSON" "$OBS_ON_JSON" <<'PY'
import json, sys
off = json.load(open(sys.argv[1]))
on = json.load(open(sys.argv[2]))
assert off["obs_enabled"] == "false" and on["obs_enabled"] == "true", \
    f'mode mixup: off={off["obs_enabled"]} on={on["obs_enabled"]}'
merged = {"bench": "obs_overhead", "off": off, "on": on}
with open("BENCH_obs.json", "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
pct = off["overhead_pct"]
print(f'off-mode marginal span overhead: {pct:+.2f}% (gate: <= 1%)')
print(f'on-mode marginal span overhead: {on["overhead_pct"]:+.2f}% (informational)')
if pct > 1.0:
    sys.exit(f"GATE FAILED: disabled-mode span overhead {pct:.2f}% > 1%")
PY
    echo "OK: BENCH_obs.json refreshed, off-mode overhead gate passed"
fi
