//! Indexing a class hierarchy — the paper's §1 object-oriented-database
//! application ([KRV]: indexing classes needs 3-sided queries).
//!
//! A product catalog's category tree is indexed so that "items in
//! category C or any subcategory priced at least P" is answered as a
//! single 3-sided query over (preorder(category), price) points.
//!
//! Run with: `cargo run --example class_hierarchy`

use path_caching::{ClassIndexBuilder, PageStore};

/// Problem size, overridable via `PC_EXAMPLE_N` so the workspace smoke
/// test (`tests/examples_smoke.rs`) can exercise this example quickly.
fn scaled(default_n: usize) -> usize {
    std::env::var("PC_EXAMPLE_N").ok().and_then(|v| v.parse().ok()).unwrap_or(default_n)
}

pub fn main() -> path_caching::Result<()> {
    let store = PageStore::in_memory(4096);
    let mut builder = ClassIndexBuilder::new();

    // A small retail category tree.
    let catalog = builder.add_class(None);
    let electronics = builder.add_class(Some(catalog));
    let computers = builder.add_class(Some(electronics));
    let laptops = builder.add_class(Some(computers));
    let desktops = builder.add_class(Some(computers));
    let phones = builder.add_class(Some(electronics));
    let home = builder.add_class(Some(catalog));
    let kitchen = builder.add_class(Some(home));
    let furniture = builder.add_class(Some(home));

    // 60k items spread over the leaves (and some mid-tree).
    let mut seed = 0xcafe_f00d_u64;
    let mut rand = move |bound: i64| {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        (seed % bound as u64) as i64
    };
    let classes = [electronics, computers, laptops, desktops, phones, home, kitchen, furniture];
    for id in 0..scaled(60_000) as u64 {
        let class = classes[rand(classes.len() as i64) as usize];
        let price = 10 + rand(5_000);
        builder.add_object(class, price, id);
    }
    let index = builder.build(&store)?;
    println!("indexed {} items in {} pages", index.len(), store.live_pages());

    // Subtree queries at different levels of the hierarchy.
    let cases = [
        ("electronics (whole subtree)", electronics, 4_000),
        ("computers subtree", computers, 4_000),
        ("laptops only-leaf", laptops, 4_000),
        ("home subtree", home, 4_500),
        ("entire catalog", catalog, 4_900),
    ];
    println!("\n{:<30} {:>9} {:>8} {:>12}", "query", "min price", "items", "page reads");
    for (label, class, min_price) in cases {
        store.reset_stats();
        let items = index.query_subtree(&store, class, min_price)?;
        println!(
            "{:<30} {:>9} {:>8} {:>12}",
            label,
            min_price,
            items.len(),
            store.stats().reads
        );
    }

    // Exact-class queries ignore subcategories.
    let exact = index.query_exact(&store, electronics, 0)?;
    let subtree = index.query_subtree(&store, electronics, 0)?;
    println!(
        "\nelectronics: {} items attached directly, {} including subcategories",
        exact.len(),
        subtree.len()
    );
    assert!(exact.len() < subtree.len());
    Ok(())
}
