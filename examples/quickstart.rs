//! Quickstart: build a path-cached point index and run 2-sided queries,
//! watching the I/O counters that the paper's bounds are stated in.
//!
//! Run with: `cargo run --example quickstart`
//!
//! With `PC_OBS_DUMP=1` and the `obs` feature, the example exits with an
//! observability dump — the metrics exposition plus the flight recorder's
//! three most I/O-expensive query traces:
//!
//! `PC_OBS_DUMP=1 cargo run --features obs --example quickstart`

use path_caching::{PageStore, Point, PointIndex, TwoSided, Variant};

/// Problem size, overridable via `PC_EXAMPLE_N` so the workspace smoke
/// test (`tests/examples_smoke.rs`) can exercise this example quickly.
fn scaled(default_n: usize) -> usize {
    std::env::var("PC_EXAMPLE_N").ok().and_then(|v| v.parse().ok()).unwrap_or(default_n)
}

pub fn main() -> path_caching::Result<()> {
    // A simulated disk with 4 KiB pages. Every page access counts as one
    // I/O — the standard external-memory model.
    let store = PageStore::in_memory(4096);

    // 100k points: think (salary, performance score) per employee.
    let n: i64 = scaled(100_000) as i64;
    let points: Vec<Point> = (0..n)
        .map(|i| {
            let x = (i * 7919) % 1_000_000; // salary
            let y = (i * 104_729) % 1_000_000; // score
            Point::new(x, y, i as u64)
        })
        .collect();

    // The two-level scheme (Theorem 4.3): optimal queries in
    // O((n/B) log log B) disk blocks.
    let index = PointIndex::build(&store, &points, Variant::TwoLevel)?;
    println!(
        "indexed {} points in {} pages of {} bytes",
        index.len(),
        store.live_pages(),
        store.page_size()
    );

    // "Everyone with salary >= 900k AND score >= 900k".
    store.reset_stats();
    let q = TwoSided { x0: 900_000, y0: 900_000 };
    let hits = index.query(&store, q)?;
    let stats = store.stats();
    println!(
        "query {q:?}: {} results in {} page reads (t/B would be {})",
        hits.len(),
        stats.reads,
        hits.len() / (store.page_size() / 24)
    );

    // Sweep output sizes to see the output-sensitive bound in action: the
    // I/O count tracks t/B plus a small logarithmic search term.
    println!("\n{:>10} {:>10} {:>12}", "corner", "results", "page reads");
    for frac in [999_000, 990_000, 900_000, 500_000, 100_000] {
        store.reset_stats();
        let q = TwoSided { x0: frac, y0: frac };
        let hits = index.query(&store, q)?;
        println!("{:>10} {:>10} {:>12}", frac, hits.len(), store.stats().reads);
    }

    obs_dump();
    Ok(())
}

/// `PC_OBS_DUMP=1` exit hook: print the metrics exposition and the flight
/// recorder's worst queries. A no-op unless requested; with `obs` compiled
/// out it explains how to get a live dump instead of printing empty output.
fn obs_dump() {
    if std::env::var("PC_OBS_DUMP").as_deref() != Ok("1") {
        return;
    }
    if !pc_obs::enabled() {
        println!(
            "\nPC_OBS_DUMP=1 set, but this build has tracing compiled out; \
             re-run with `--features obs` for metrics and flight traces"
        );
        return;
    }
    println!("\n=== pc-obs metrics ===");
    print!("{}", pc_obs::render_text());
    println!("=== flight recorder: top 3 queries by I/O ===");
    for trace in pc_obs::flight_top(3) {
        print!("{}", trace.render());
    }
}
