//! The paper's central theme, §6: space/time trade-offs in secondary
//! memory. Builds every PST variant over the same data and prints measured
//! space and query I/O side by side, plus the segment-tree wasteful-I/O
//! story of §2 (Figure 3), and a run against a real file-backed store to
//! show the same code path hits an actual disk.
//!
//! Run with: `cargo run --release --example storage_tradeoffs`

use path_caching::segtree::{CachedSegmentTree, NaiveSegmentTree};
use path_caching::{Interval, PageStore, Point, PointIndex, TwoSided, Variant};

/// Problem size, overridable via `PC_EXAMPLE_N` so the workspace smoke
/// test (`tests/examples_smoke.rs`) can exercise this example quickly.
fn scaled(default_n: usize) -> usize {
    std::env::var("PC_EXAMPLE_N").ok().and_then(|v| v.parse().ok()).unwrap_or(default_n)
}

fn xorshift(state: &mut u64, bound: i64) -> i64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    (*state % bound as u64) as i64
}

pub fn main() -> path_caching::Result<()> {
    let page = 4096;
    let n = scaled(60_000);
    let mut s = 0x1357_9bdf_u64;
    let points: Vec<Point> = (0..n)
        .map(|id| Point::new(xorshift(&mut s, 1_000_000), xorshift(&mut s, 1_000_000), id as u64))
        .collect();
    let queries: Vec<TwoSided> = (0..200)
        .map(|_| TwoSided { x0: xorshift(&mut s, 1_000_000), y0: xorshift(&mut s, 1_000_000) })
        .collect();

    println!("== PST variants over the same {n} points (page {page} B) ==");
    println!(
        "{:<16} {:>10} {:>14} {:>14}",
        "variant", "pages", "avg query I/O", "avg results"
    );
    let variants: &[(&str, Variant)] = &[
        ("naive [IKO]", Variant::Naive),
        ("basic (L3.1)", Variant::Basic),
        ("segmented (T3.2)", Variant::Segmented),
        ("two-level (T4.3)", Variant::TwoLevel),
        ("3-level (T4.4)", Variant::Multilevel(3)),
    ];
    for (label, variant) in variants {
        let store = PageStore::in_memory(page);
        let index = PointIndex::build(&store, &points, *variant)?;
        let pages_used = store.live_pages();
        store.reset_stats();
        let mut results = 0usize;
        for q in &queries {
            results += index.query(&store, *q)?.len();
        }
        let stats = store.stats();
        println!(
            "{:<16} {:>10} {:>14.1} {:>14.1}",
            label,
            pages_used,
            stats.reads as f64 / queries.len() as f64,
            results as f64 / queries.len() as f64
        );
    }

    println!("\n== Segment trees: the Figure 3 wasteful-I/O pathology ==");
    let intervals: Vec<Interval> = (0..(n / 2) as u64)
        .map(|id| {
            let lo = xorshift(&mut s, 1_000_000);
            Interval::new(lo, lo + 1 + xorshift(&mut s, 50_000), id)
        })
        .collect();
    let store = PageStore::in_memory(page);
    let naive = NaiveSegmentTree::build(&store, &intervals)?;
    let cached = CachedSegmentTree::build(&store, &intervals)?;
    let stabs: Vec<i64> = (0..200).map(|_| xorshift(&mut s, 1_000_000)).collect();
    for (label, profiled) in [("naive", false), ("path-cached", true)] {
        let (mut useful, mut wasteful, mut search) = (0u64, 0u64, 0u64);
        for &q in &stabs {
            let p = if profiled {
                cached.stab_profiled(&store, q)?
            } else {
                naive.stab_profiled(&store, q)?
            };
            useful += p.useful_ios;
            wasteful += p.wasteful_ios;
            search += p.search_ios;
        }
        let nq = stabs.len() as u64;
        println!(
            "{label:<12} per query: search {:.1}, useful {:.1}, wasteful {:.1}",
            search as f64 / nq as f64,
            useful as f64 / nq as f64,
            wasteful as f64 / nq as f64
        );
    }

    println!("\n== Same index on a real file-backed store ==");
    let dir = std::env::temp_dir().join(format!("path-caching-demo-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("index.pcdb");
    {
        let store = PageStore::file(&path, page)?;
        let index = PointIndex::build(&store, &points, Variant::TwoLevel)?;
        store.sync()?;
        store.reset_stats();
        let hits = index.query(&store, TwoSided { x0: 950_000, y0: 950_000 })?;
        println!(
            "file {} ({} KiB): {} hits in {} page reads",
            path.display(),
            std::fs::metadata(&path).map(|m| m.len() / 1024).unwrap_or(0),
            hits.len(),
            store.stats().reads
        );
    }
    std::fs::remove_file(&path).ok();
    Ok(())
}
