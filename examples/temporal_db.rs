//! Dynamic interval management for a temporal database — the paper's §1
//! motivating application ([KRV] reduction: stabbing → 2-sided queries) —
//! served over a real socket with **time-travel**.
//!
//! We model employee contracts as validity intervals `[start_day,
//! end_day]` and answer "who was employed on day D?" while contracts are
//! created and terminated online. The server installs every applied
//! update batch as a new immutable epoch, so the second time axis is
//! literal: `as_of(version)` re-asks any historical question against the
//! exact state the organisation was in at that version, bit-identically,
//! while new updates keep landing.
//!
//! Run with: `cargo run --example temporal_db`
//!
//! The [KRV] reduction over the wire: interval `[lo, hi]` is the point
//! `(-lo, hi)` (x negated so the canonical north-east PST answers the
//! north-west query), and "stab day D" is `TwoSided { x0: -D, y0: D }`.

use std::sync::Arc;
use std::time::Duration;

use pc_serve::wire::{Body, Op};
use pc_serve::{Client, DynamicPstTarget, Registry, Server, ServerConfig, Service};
use path_caching::{PageStore, Point};

/// Problem size, overridable via `PC_EXAMPLE_N` so the workspace smoke
/// test (`tests/examples_smoke.rs`) can exercise this example quickly.
fn scaled(default_n: usize) -> usize {
    std::env::var("PC_EXAMPLE_N").ok().and_then(|v| v.parse().ok()).unwrap_or(default_n)
}

/// Contract `[start, end]` under the [KRV] reduction.
fn contract(start: i64, end: i64, id: u64) -> Point {
    Point { x: -start, y: end, id }
}

/// Wire op for "which contracts were active on day `d`?".
fn stab(d: i64) -> Op {
    Op::TwoSided { x0: -d, y0: d }
}

fn active_on(client: &mut Client, as_of: u64, day: i64) -> Result<u64, Box<dyn std::error::Error>> {
    match client.call_as_of(0, 0, as_of, stab(day))?.body {
        Body::Points(ps) => Ok(ps.len() as u64),
        other => Err(format!("unexpected response: {other:?}").into()),
    }
}

pub fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Seed: historical contracts with varied durations.
    let n = scaled(20_000) as u64;
    let mut seed = 0x5eed_1234_u64;
    let mut rand = move |bound: i64| {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        (seed % bound as u64) as i64
    };
    let horizon = 20_000; // days ~ 55 years
    let contracts: Vec<Point> = (0..n)
        .map(|id| {
            let start = rand(horizon);
            let len = 1 + rand(3000);
            contract(start, (start + len).min(horizon), id)
        })
        .collect();

    let store = Arc::new(PageStore::in_memory(4096));
    let mut registry = Registry::new();
    let pst = pc_pst::DynamicPst::build(&store, &contracts)?;
    registry.register("contracts", Box::new(DynamicPstTarget::new(pst)));

    // Every acked update batch becomes an addressable epoch; retain enough
    // of them that the whole demo's history stays inside the window.
    let cfg = ServerConfig { version_retain: 4096, ..ServerConfig::default() };
    let handle = Server::spawn(Service { store, registry }, cfg)?;
    println!("serving {n} contracts on {}", handle.addr());
    let mut client = Client::connect(handle.addr(), Duration::from_secs(10))?;

    // Epoch 0 (`as_of` the current head before any update): who was
    // employed on day 10 000?
    let day = 10_000;
    let v0_active = active_on(&mut client, 0, day)?;
    println!("day {day}: {v0_active} active contracts at version 0");

    // Online updates in waves: each wave terminates contracts active on
    // `day` early and signs replacement hires, all over the socket. After
    // each wave we note the server's current version — a bookmark into
    // the second time axis.
    let waves = 3usize;
    let per_wave = (n / 40).clamp(4, 200);
    let mut bookmarks = vec![(0u64, v0_active)];
    let mut next_id = n;
    for w in 0..waves {
        let victims = match client.call(0, 0, stab(day))?.body {
            Body::Points(ps) => ps,
            other => return Err(format!("unexpected response: {other:?}").into()),
        };
        let terminated = victims.len().min(per_wave as usize);
        for p in victims.iter().take(terminated) {
            match client.call(0, 0, Op::Delete(*p))?.body {
                Body::Ack { .. } => {}
                other => return Err(format!("termination not acked: {other:?}").into()),
            }
        }
        // Replacement hires start *after* `day`, so each wave visibly
        // shrinks the historical headcount the audit below replays.
        for _ in 0..per_wave {
            let p = contract(day + 500 + w as i64, day + 3_500, next_id);
            next_id += 1;
            match client.call(0, 0, Op::Insert(p))?.body {
                Body::Ack { .. } => {}
                other => return Err(format!("hire not acked: {other:?}").into()),
            }
        }
        let current = match client.versions()?.body {
            Body::Versions { current, .. } => current,
            other => return Err(format!("unexpected response: {other:?}").into()),
        };
        let now_active = active_on(&mut client, 0, day)?;
        bookmarks.push((current, now_active));
        println!(
            "wave {w}: {terminated} terminations + {per_wave} hires -> version {current}, \
             {now_active} active on day {day}"
        );
    }

    // Time-travel audit: every bookmarked version still answers exactly
    // what it answered live — history is immutable even though the head
    // kept moving.
    println!("\n{:>10} {:>10}", "version", "active");
    for &(version, expected) in &bookmarks {
        // Version 0 pre-dates the first install and is only addressable
        // while it *is* the head, so the pre-wave bookmark is reported
        // as recorded rather than re-queried.
        if version != 0 {
            let got = active_on(&mut client, version, day)?;
            assert_eq!(got, expected, "as_of({version}) must replay the bookmarked answer");
        }
        println!("{version:>10} {expected:>10}");
    }
    let head = bookmarks.last().unwrap();
    assert_eq!(
        active_on(&mut client, 0, day)?,
        head.1,
        "head query must match the last bookmark"
    );

    // The retained window, from the server's own mouth.
    match client.versions()?.body {
        Body::Versions { current, oldest, installed, reclaimed_pages, pinned } => {
            println!(
                "\nversions: current={current} oldest={oldest} installed={installed} \
                 reclaimed_pages={reclaimed_pages} pinned={pinned}"
            );
            assert_eq!(current, installed, "one epoch per applied batch");
        }
        other => return Err(format!("unexpected response: {other:?}").into()),
    }

    client.shutdown_server()?;
    handle.join();
    println!("server drained and shut down");
    Ok(())
}
