//! Dynamic interval management for a temporal database — the paper's §1
//! motivating application ([KRV] reduction: stabbing → 2-sided queries).
//!
//! We model employee contracts as validity intervals `[start_day,
//! end_day]` and answer "who was employed on day D?" time-travel queries
//! while contracts are created and terminated online.
//!
//! Run with: `cargo run --example temporal_db`

use path_caching::{Interval, IntervalStore, PageStore};

/// Problem size, overridable via `PC_EXAMPLE_N` so the workspace smoke
/// test (`tests/examples_smoke.rs`) can exercise this example quickly.
fn scaled(default_n: usize) -> usize {
    std::env::var("PC_EXAMPLE_N").ok().and_then(|v| v.parse().ok()).unwrap_or(default_n)
}

pub fn main() -> path_caching::Result<()> {
    let store = PageStore::in_memory(4096);
    let mut contracts = IntervalStore::new(&store)?;

    // Seed: 50k historical contracts with varied durations.
    let mut seed = 0x5eed_1234_u64;
    let mut rand = move |bound: i64| {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        (seed % bound as u64) as i64
    };
    let horizon = 20_000; // days ~ 55 years
    for id in 0..scaled(50_000) as u64 {
        let start = rand(horizon);
        let len = 1 + rand(3000);
        contracts.insert(&store, Interval::new(start, (start + len).min(horizon), id))?;
    }
    println!("loaded {} contracts in {} pages", contracts.len(), store.live_pages());

    // Time-travel query: who was employed on day 10_000?
    store.reset_stats();
    let active = contracts.stab(&store, 10_000)?;
    println!(
        "day 10000: {} active contracts found in {} page reads",
        active.len(),
        store.stats().reads
    );

    // Online updates: terminate some contracts early, sign new ones, and
    // keep querying — all against the same structure (Theorem 5.1).
    let mut terminated = 0;
    for iv in active.iter().take(500) {
        contracts.remove(&store, *iv)?;
        terminated += 1;
    }
    for id in 0..500u64 {
        contracts.insert(&store, Interval::new(9_500, 12_000, 1_000_000 + id))?;
    }
    let after = contracts.stab(&store, 10_000)?;
    println!(
        "after {terminated} terminations and 500 new hires: {} active on day 10000",
        after.len()
    );
    assert_eq!(after.len(), active.len() - terminated + 500);

    // Point-in-time audit across the timeline.
    println!("\n{:>8} {:>10} {:>12}", "day", "active", "page reads");
    for day in [0, 2_500, 5_000, 10_000, 15_000, 19_999] {
        store.reset_stats();
        let active = contracts.stab(&store, day)?;
        println!("{:>8} {:>10} {:>12}", day, active.len(), store.stats().reads);
    }
    Ok(())
}
