//! Slow-query log demo: catch the paper's Figure-3 pathology through a
//! live server.
//!
//! Run with: `cargo run --release --example slowlog_demo`
//!
//! Serves the *same* point set behind two targets — a path-cached dynamic
//! PST and the naive binary blocking of §2/Figure 3 — drives identical
//! traffic at both with 1-in-16 trace sampling retuned over the wire,
//! then forces one traced corner query at the naive target with
//! `FLAG_TRACE`. Every naive query walks its binary root-to-corner path
//! reading each node's own underfull block — `O(log n)` wasteful
//! transfers where the cached structure pays `O(1)` per path segment —
//! so when the ADMIN `SlowLog` op drains the top-K ring, the waste
//! ranking is owned by `@naive` entries whose span trees show the
//! per-node `node_block` reads, each one wasteful, while `@cached`
//! entries for the same ops carry a fraction of the waste. The
//! per-target `pc_target_*` metric families tell the same story in
//! aggregate, no per-request digging required.

use std::sync::Arc;
use std::time::Duration;

use pc_serve::wire::{Body, Op};
use pc_serve::{
    Client, DynamicPstTarget, NaivePstTarget, Registry, Server, ServerConfig, Service, SlowEntry,
    FLAG_TRACE, RANKED_BY_LATENCY, RANKED_BY_WASTE,
};
use path_caching::{PageStore, Point};

/// Problem size, overridable via `PC_EXAMPLE_N` so the workspace smoke
/// test (`tests/examples_smoke.rs`) can exercise this example quickly.
fn scaled(default_n: usize) -> usize {
    std::env::var("PC_EXAMPLE_N").ok().and_then(|v| v.parse().ok()).unwrap_or(default_n)
}

fn render_entry(e: &SlowEntry) {
    let rank = match e.rankings {
        r if r == RANKED_BY_LATENCY | RANKED_BY_WASTE => "latency+waste",
        RANKED_BY_WASTE => "waste",
        _ => "latency",
    };
    println!(
        "  request {} {}@{}: {}us, io={} (search={}, wasteful={}), items={} [{}]",
        e.request_id,
        e.op,
        e.target,
        e.latency_ns / 1_000,
        e.total_io,
        e.search_ios,
        e.wasteful_ios,
        e.items,
        rank,
    );
}

pub fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Small pages make the pathology visible at example scale: few points
    // fit a block, so underfull node-block reads dominate the naive walk.
    let n = scaled(20_000) as i64;
    let store = Arc::new(PageStore::in_memory(512));
    let points: Vec<Point> =
        (0..n).map(|i| Point::new(i, (i * 37) % n, i as u64)).collect();

    let mut registry = Registry::new();
    let cached = registry
        .register("cached", Box::new(DynamicPstTarget::new(pc_pst::DynamicPst::build(&store, &points)?)));
    let naive =
        registry.register("naive", Box::new(NaivePstTarget(pc_pst::NaivePst::build(&store, &points)?)));

    let handle = Server::spawn(Service { store, registry }, ServerConfig::default())?;
    println!("serving {n} points on {} (targets: cached, naive)", handle.addr());

    let mut client = Client::connect(handle.addr(), Duration::from_secs(10))?;

    // Retune the sampler over the wire: trace 1 in 16 requests from here
    // on. No `obs` feature needed — request-scoped capture is always
    // compiled, and unsampled requests keep a zero-allocation fast path.
    client.set_sampling(16)?;

    // Background traffic: selective two-sided queries against both
    // targets (x0 hugs the top of the x range, so each returns a handful
    // of points cheaply).
    let ops = scaled(20_000).min(400) as i64;
    for i in 0..ops {
        let q = Op::TwoSided { x0: n - 1 - (i % 64), y0: (i * 31) % n };
        client.call(cached, 0, q.clone())?;
        client.call(naive, 0, q)?;
    }

    // The Figure-3 pathology, forced into the trace path with FLAG_TRACE:
    // a corner query whose root-to-corner path is the full binary height.
    let pathological = Op::TwoSided { x0: n - 1, y0: 0 };
    client.call_flags(naive, 0, FLAG_TRACE, pathological)?;

    // Drain the slow-query log. The pathological query tops it.
    let entries = match client.slow_log(8, false)?.body {
        Body::SlowLog(entries) => entries,
        other => return Err(format!("unexpected response: {other:?}").into()),
    };
    println!("\n=== slow-query log (top {} of the retained ring) ===", entries.len());
    for e in &entries {
        render_entry(e);
    }

    let top = entries.first().ok_or("slow log is empty")?;
    println!(
        "\ntop entry span tree ({} spans; wasteful = self_reads - floor(items/B) on output spans):",
        top.spans.len()
    );
    for s in top.spans.iter().take(12) {
        println!(
            "{:indent$}{} [{}] reads={} items={} wasteful={}",
            "",
            s.name,
            if s.output { "out" } else { "nav" },
            s.self_reads,
            s.items,
            s.wasteful,
            indent = 2 + 2 * s.depth as usize,
        );
    }
    if top.spans.len() > 12 {
        println!("  … {} more spans", top.spans.len() - 12);
    }

    // The aggregate view of the same story: the naive target's family
    // carries the waste, the cached target's does not.
    match client.metrics()?.body {
        Body::Metrics(text) => {
            println!("\n=== per-target families (excerpt) ===");
            for line in text.lines().filter(|l| {
                l.starts_with("pc_target_traced_wasteful_io_total")
                    || l.starts_with("pc_target_requests_total")
            }) {
                println!("{line}");
            }
        }
        other => return Err(format!("unexpected response: {other:?}").into()),
    }

    client.shutdown_server()?;
    handle.join();
    Ok(())
}
