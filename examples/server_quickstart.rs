//! Server quickstart: spawn the `pc-serve` query service on an ephemeral
//! port, drive a mixed read/write workload over a real socket, and print
//! throughput, tail latency, and an excerpt of the ADMIN metrics.
//!
//! Run with: `cargo run --example server_quickstart`
//!
//! This is the service-layer counterpart of `examples/quickstart.rs`: the
//! same two-level structures, but behind the wire protocol with admission
//! control and update batching in the path.

use std::sync::Arc;
use std::time::{Duration, Instant};

use pc_obs::hist::Histogram;
use pc_serve::wire::{Body, Op};
use pc_serve::{Client, DynamicPstTarget, Registry, Server, ServerConfig, Service};
use path_caching::{PageStore, Point};

/// Problem size, overridable via `PC_EXAMPLE_N` so the workspace smoke
/// test (`tests/examples_smoke.rs`) can exercise this example quickly.
fn scaled(default_n: usize) -> usize {
    std::env::var("PC_EXAMPLE_N").ok().and_then(|v| v.parse().ok()).unwrap_or(default_n)
}

pub fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The served data: a dynamic PST over (salary, score) points, exactly
    // as in the quickstart, but now shared behind a server.
    let n: i64 = scaled(50_000) as i64;
    let store = Arc::new(PageStore::in_memory(4096));
    let points: Vec<Point> = (0..n)
        .map(|i| Point::new((i * 7919) % 1_000_000, (i * 104_729) % 1_000_000, i as u64))
        .collect();
    let mut registry = Registry::new();
    let pst = pc_pst::DynamicPst::build(&store, &points)?;
    let dyn_id = registry.register("employees", Box::new(DynamicPstTarget::new(pst)));

    // Ephemeral port: the OS picks, the handle reports.
    let handle = Server::spawn(Service { store, registry }, ServerConfig::default())?;
    println!("serving {} points on {}", n, handle.addr());

    // A mixed closed-loop workload on one connection: 85% 2-sided queries
    // sweeping the corner, 15% inserts. Latency lands in the same
    // power-of-two histogram the server uses internally.
    let mut client = Client::connect(handle.addr(), Duration::from_secs(10))?;
    let latency = Histogram::default();
    let ops = scaled(50_000).min(20_000);
    let mut results = 0u64;
    let t0 = Instant::now();
    for i in 0..ops as i64 {
        let op = if i % 7 == 0 {
            Op::Insert(Point::new((i * 31) % 1_000_000, (i * 37) % 1_000_000, (n + i) as u64))
        } else {
            let corner = 1_000_000 - 1_000 * (i % 100);
            Op::TwoSided { x0: corner, y0: corner }
        };
        let t = Instant::now();
        let resp = client.call(dyn_id, 0, op)?;
        latency.record(t.elapsed().as_nanos() as u64);
        match resp.body {
            Body::Points(ps) => results += ps.len() as u64,
            Body::Ack { .. } => {}
            other => return Err(format!("unexpected response: {other:?}").into()),
        }
    }
    let elapsed = t0.elapsed();
    let snap = latency.snapshot();
    println!(
        "{} ops in {:.2}s ({:.0} ops/s), {} points returned",
        ops,
        elapsed.as_secs_f64(),
        ops as f64 / elapsed.as_secs_f64().max(1e-9),
        results,
    );
    println!(
        "latency: p50 <= {}us, p99 <= {}us",
        snap.quantile(0.50) / 1_000,
        snap.quantile(0.99) / 1_000,
    );

    // The ADMIN metrics op returns the server's own view — batching shows
    // up here even though this client never saw it directly.
    match client.metrics()?.body {
        Body::Metrics(text) => {
            println!("\n=== ADMIN metrics (excerpt) ===");
            for line in text.lines().filter(|l| {
                l.starts_with("pc_serve_requests_total")
                    || l.starts_with("pc_serve_queries_ok_total")
                    || l.starts_with("pc_serve_updates_ok_total")
                    || l.starts_with("pc_serve_batches_total")
                    || l.starts_with("pc_serve_overloaded_total")
            }) {
                println!("{line}");
            }
        }
        other => return Err(format!("unexpected response: {other:?}").into()),
    }

    // Drain-then-shutdown over the wire, then join every server thread.
    client.shutdown_server()?;
    handle.join();
    println!("server drained and shut down");
    Ok(())
}
